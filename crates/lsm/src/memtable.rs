//! The in-memory write buffer (memtable).
//!
//! An ordered map from user key to the *newest* entry for that key, where
//! an entry is a sequence number plus either a value or a tombstone.
//! RocksDB's default memtable is a skiplist; an ordered tree gives the
//! same O(log n) comparison behaviour, which is what the cost model
//! charges for. Concurrency is provided one level up ([`crate::Db`] holds
//! the memtable behind a lock, as the single-writer path does in RocksDB).

use std::collections::BTreeMap;
use std::ops::Bound as StdBound;

/// A value or a deletion marker.
pub type Slot = Option<Vec<u8>>;

/// The memtable.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, (u64, Slot)>,
    bytes: usize,
}

impl MemTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a put (`Some(value)`) or tombstone (`None`). The newest
    /// sequence number wins; replacing an entry adjusts the byte estimate.
    pub fn insert(&mut self, key: Vec<u8>, seq: u64, value: Slot) {
        let key_len = key.len();
        let new_val_len = value.as_ref().map_or(0, Vec::len);
        match self.map.insert(key, (seq, value)) {
            Some((_, old)) => {
                // Key bytes were already counted; swap the value bytes.
                self.bytes = self.bytes - old.as_ref().map_or(0, Vec::len) + new_val_len;
            }
            None => self.bytes += key_len + new_val_len,
        }
    }

    /// Newest entry for `key`: `None` if absent, `Some((seq, None))` if
    /// deleted, `Some((seq, Some(v)))` if present.
    pub fn get(&self, key: &[u8]) -> Option<(u64, Option<&[u8]>)> {
        self.map.get(key).map(|(seq, v)| (*seq, v.as_deref()))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate raw bytes held (keys + live values).
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u64, Option<&[u8]>)> {
        self.map
            .iter()
            .map(|(k, (s, v))| (k.as_slice(), *s, v.as_deref()))
    }

    /// Iterate entries with keys in `[lo, hi)` style bounds.
    pub fn range<'a>(
        &'a self,
        lo: StdBound<&'a [u8]>,
        hi: StdBound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a [u8], u64, Option<&'a [u8]>)> + 'a {
        self.map
            .range::<[u8], _>((lo, hi))
            .map(|(k, (s, v))| (k.as_slice(), *s, v.as_deref()))
    }

    /// Drain into a sorted vector (used by flush).
    pub fn into_sorted_entries(self) -> Vec<(Vec<u8>, u64, Slot)> {
        self.map.into_iter().map(|(k, (s, v))| (k, s, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = MemTable::new();
        m.insert(b"k1".to_vec(), 1, Some(b"v1".to_vec()));
        assert_eq!(m.get(b"k1"), Some((1, Some(b"v1".as_slice()))));
        assert_eq!(m.get(b"k2"), None);
    }

    #[test]
    fn newest_write_wins() {
        let mut m = MemTable::new();
        m.insert(b"k".to_vec(), 1, Some(b"old".to_vec()));
        m.insert(b"k".to_vec(), 2, Some(b"new".to_vec()));
        assert_eq!(m.get(b"k"), Some((2, Some(b"new".as_slice()))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_distinguishable_from_absence() {
        let mut m = MemTable::new();
        m.insert(b"k".to_vec(), 5, None);
        assert_eq!(m.get(b"k"), Some((5, None)));
        assert_eq!(m.get(b"other"), None);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m = MemTable::new();
        for k in [b"c".to_vec(), b"a".to_vec(), b"b".to_vec()] {
            m.insert(k, 1, Some(vec![]));
        }
        let keys: Vec<&[u8]> = m.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
    }

    #[test]
    fn range_respects_bounds() {
        let mut m = MemTable::new();
        for i in 0..10u8 {
            m.insert(vec![i], 1, Some(vec![i]));
        }
        let got: Vec<u8> = m
            .range(
                StdBound::Included([3u8].as_slice()),
                StdBound::Excluded([7u8].as_slice()),
            )
            .map(|(k, _, _)| k[0])
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn byte_accounting_tracks_growth() {
        let mut m = MemTable::new();
        m.insert(vec![0; 16], 1, Some(vec![0; 32]));
        assert_eq!(m.approximate_bytes(), 48);
        m.insert(vec![1; 16], 2, Some(vec![0; 32]));
        assert_eq!(m.approximate_bytes(), 96);
    }

    #[test]
    fn byte_accounting_on_replacement() {
        let mut m = MemTable::new();
        m.insert(vec![0; 16], 1, Some(vec![0; 32]));
        m.insert(vec![0; 16], 2, Some(vec![0; 8]));
        assert_eq!(m.approximate_bytes(), 24);
        m.insert(vec![0; 16], 3, None); // tombstone drops the value bytes
        assert_eq!(m.approximate_bytes(), 16);
    }

    #[test]
    fn into_sorted_entries_preserves_everything() {
        let mut m = MemTable::new();
        m.insert(b"b".to_vec(), 2, None);
        m.insert(b"a".to_vec(), 1, Some(b"x".to_vec()));
        let entries = m.into_sorted_entries();
        assert_eq!(
            entries,
            vec![
                (b"a".to_vec(), 1, Some(b"x".to_vec())),
                (b"b".to_vec(), 2, None),
            ]
        );
    }
}
