//! Error type for the LSM baseline.

use kvcsd_blockfs::FsError;
use std::fmt;

/// Errors surfaced by [`crate::Db`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// Underlying filesystem error.
    Fs(FsError),
    /// A persisted structure failed validation (checksum, framing).
    Corruption(String),
    /// Operation invalid for the current configuration or state.
    InvalidState(String),
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Fs(e) => write!(f, "filesystem error: {e}"),
            LsmError::Corruption(m) => write!(f, "corruption: {m}"),
            LsmError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for LsmError {}

impl From<FsError> for LsmError {
    fn from(e: FsError) -> Self {
        LsmError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_fs_errors() {
        let e = LsmError::from(FsError::NoSpace);
        assert_eq!(e, LsmError::Fs(FsError::NoSpace));
        assert!(e.to_string().contains("no space"));
    }

    #[test]
    fn corruption_displays_detail() {
        assert!(LsmError::Corruption("bad crc".into())
            .to_string()
            .contains("bad crc"));
    }
}
