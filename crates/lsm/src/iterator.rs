//! K-way merging iterator with newest-wins semantics.
//!
//! Sources are supplied newest-first (memtable, then L0 newest to oldest,
//! then L1, L2, ...). For keys present in several sources, only the entry
//! from the newest source is emitted; tombstones are emitted too (callers
//! drop or keep them depending on context — compaction to the bottom level
//! drops them, reads treat them as "absent").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sstable::Entry;
use crate::Result;

/// A sorted entry stream feeding the merge.
pub type Source<'a> = Box<dyn Iterator<Item = Result<Entry>> + 'a>;

struct HeapItem {
    key: Vec<u8>,
    /// Source rank; lower = newer.
    rank: usize,
    entry: Entry,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.rank == other.rank
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for (key asc, rank asc).
        other.key.cmp(&self.key).then(other.rank.cmp(&self.rank))
    }
}

/// Merges N sorted entry streams, newest source first.
pub struct MergeIter<'a> {
    heap: BinaryHeap<HeapItem>,
    sources: Vec<Source<'a>>,
    error: Option<crate::LsmError>,
}

impl<'a> MergeIter<'a> {
    /// Build a merge over `sources`; index 0 is the newest.
    pub fn new(mut sources: Vec<Source<'a>>) -> Self {
        let mut it = Self {
            heap: BinaryHeap::new(),
            sources: Vec::new(),
            error: None,
        };
        for (rank, src) in sources.iter_mut().enumerate() {
            it.advance_source(src, rank);
        }
        it.sources = sources;
        it
    }

    fn advance_source(&mut self, src: &mut Source<'a>, rank: usize) {
        match src.next() {
            Some(Ok(entry)) => {
                self.heap.push(HeapItem {
                    key: entry.key.clone(),
                    rank,
                    entry,
                });
            }
            Some(Err(e)) => self.error = Some(e),
            None => {}
        }
    }

    fn pop_and_refill(&mut self) -> Option<HeapItem> {
        let item = self.heap.pop()?;
        let rank = item.rank;
        let mut src = std::mem::replace(&mut self.sources[rank], Box::new(std::iter::empty()));
        self.advance_source(&mut src, rank);
        self.sources[rank] = src;
        Some(item)
    }
}

impl Iterator for MergeIter<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.error.take() {
            return Some(Err(e));
        }
        let winner = self.pop_and_refill()?;
        // Skip older versions of the same key.
        while let Some(top) = self.heap.peek() {
            if top.key != winner.key {
                break;
            }
            self.pop_and_refill();
            if let Some(e) = self.error.take() {
                return Some(Err(e));
            }
        }
        Some(Ok(winner.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(entries: Vec<(&str, u64, Option<&str>)>) -> Source<'static> {
        let owned: Vec<Entry> = entries
            .into_iter()
            .map(|(k, seq, v)| Entry {
                key: k.as_bytes().to_vec(),
                seq,
                value: v.map(|s| s.as_bytes().to_vec()),
            })
            .collect();
        Box::new(owned.into_iter().map(Ok))
    }

    fn keys_of(it: MergeIter<'_>) -> Vec<(String, u64)> {
        it.map(|e| {
            let e = e.unwrap();
            (String::from_utf8(e.key).unwrap(), e.seq)
        })
        .collect()
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let it = MergeIter::new(vec![
            src(vec![("b", 1, Some("x"))]),
            src(vec![("a", 2, Some("y")), ("c", 3, Some("z"))]),
        ]);
        assert_eq!(
            keys_of(it),
            vec![("a".into(), 2), ("b".into(), 1), ("c".into(), 3)]
        );
    }

    #[test]
    fn newest_source_wins_duplicates() {
        let it = MergeIter::new(vec![
            src(vec![("k", 9, Some("new"))]),
            src(vec![("k", 3, Some("old"))]),
        ]);
        let got: Vec<Entry> = it.map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 9);
        assert_eq!(got[0].value, Some(b"new".to_vec()));
    }

    #[test]
    fn tombstones_shadow_older_puts() {
        let it = MergeIter::new(vec![
            src(vec![("k", 9, None)]),
            src(vec![("k", 3, Some("old"))]),
        ]);
        let got: Vec<Entry> = it.map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].value, None,
            "tombstone must be the surviving version"
        );
    }

    #[test]
    fn triple_overlap_resolves_by_rank() {
        let it = MergeIter::new(vec![
            src(vec![("a", 30, Some("v3")), ("b", 31, Some("b3"))]),
            src(vec![("a", 20, Some("v2"))]),
            src(vec![("a", 10, Some("v1")), ("z", 11, Some("zz"))]),
        ]);
        let got = keys_of(it);
        assert_eq!(
            got,
            vec![("a".into(), 30), ("b".into(), 31), ("z".into(), 11)]
        );
    }

    #[test]
    fn empty_sources_are_fine() {
        let it = MergeIter::new(vec![
            src(vec![]),
            src(vec![("x", 1, Some("y"))]),
            src(vec![]),
        ]);
        assert_eq!(keys_of(it).len(), 1);
        let it = MergeIter::new(vec![]);
        assert_eq!(keys_of(it).len(), 0);
    }

    #[test]
    fn errors_propagate() {
        let bad: Source<'static> =
            Box::new(vec![Err(crate::LsmError::Corruption("boom".into()))].into_iter());
        let mut it = MergeIter::new(vec![bad, src(vec![("a", 1, Some("x"))])]);
        assert!(it.next().unwrap().is_err());
    }

    #[test]
    fn large_interleaved_merge_is_sorted_and_deduped() {
        let a: Vec<(String, u64)> = (0..500)
            .map(|i| (format!("k{:05}", i * 2), 100 + i))
            .collect();
        let b: Vec<(String, u64)> = (0..500)
            .map(|i| (format!("k{:05}", i * 3), 1000 + i))
            .collect();
        let sa: Source<'static> = Box::new(a.clone().into_iter().map(|(k, s)| {
            Ok(Entry {
                key: k.into_bytes(),
                seq: s,
                value: Some(vec![]),
            })
        }));
        let sb: Source<'static> = Box::new(b.clone().into_iter().map(|(k, s)| {
            Ok(Entry {
                key: k.into_bytes(),
                seq: s,
                value: Some(vec![]),
            })
        }));
        let got = keys_of(MergeIter::new(vec![sa, sb]));
        // Sorted...
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // ...deduped with source-0 priority on multiples of 6.
        let six = got.iter().find(|(k, _)| k == "k00006").unwrap();
        assert!(
            six.1 >= 100 && six.1 < 1000,
            "rank-0 source must win, got seq {}",
            six.1
        );
        let expected: std::collections::BTreeSet<String> = a
            .iter()
            .map(|(k, _)| k.clone())
            .chain(b.iter().map(|(k, _)| k.clone()))
            .collect();
        assert_eq!(got.len(), expected.len());
    }
}
