//! Write-ahead log with checksummed record framing and replay.
//!
//! Record format: `crc32:u32 | len:u32 | payload`, where the payload is
//! `kind:u8 | seq:u64 | klen:u32 | key | value`. Like RocksDB, the WAL
//! backs the memtable: it is truncated (deleted and recreated) after each
//! successful flush.

use kvcsd_blockfs::{fs::FileId, BlockFs};

use kvcsd_sim::bytes::{le_u32, le_u64};

use crate::error::LsmError;
use crate::Result;

/// CRC-32 (IEEE) computed bytewise; small, dependency-free, and good
/// enough to catch torn records in replay.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    Put {
        seq: u64,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        seq: u64,
        key: Vec<u8>,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let (kind, seq, key, value): (u8, u64, &[u8], &[u8]) = match self {
            WalRecord::Put { seq, key, value } => (1, *seq, key, value),
            WalRecord::Delete { seq, key } => (2, *seq, key, &[]),
        };
        let mut out = Vec::with_capacity(1 + 8 + 4 + key.len() + value.len());
        out.push(kind);
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(value);
        out
    }

    fn decode(payload: &[u8]) -> Result<WalRecord> {
        if payload.len() < 13 {
            return Err(LsmError::Corruption("wal record too short".into()));
        }
        let kind = payload[0];
        let seq = le_u64(payload, 1);
        let klen = le_u32(payload, 9) as usize;
        if payload.len() < 13 + klen {
            return Err(LsmError::Corruption("wal key truncated".into()));
        }
        let key = payload[13..13 + klen].to_vec();
        let value = payload[13 + klen..].to_vec();
        match kind {
            1 => Ok(WalRecord::Put { seq, key, value }),
            2 if value.is_empty() => Ok(WalRecord::Delete { seq, key }),
            _ => Err(LsmError::Corruption(format!("bad wal record kind {kind}"))),
        }
    }
}

/// An open write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: FileId,
    path: String,
}

impl Wal {
    /// Create a fresh WAL at `path` (replacing any stale one).
    pub fn create(fs: &BlockFs, path: &str) -> Result<Self> {
        if fs.exists(path) {
            fs.unlink(path)?;
        }
        let file = fs.create(path)?;
        Ok(Self {
            file,
            path: path.to_string(),
        })
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Append one record; optionally fsync.
    pub fn append(&self, fs: &BlockFs, rec: &WalRecord, sync: bool) -> Result<()> {
        let payload = rec.encode();
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        fs.append(self.file, &framed)?;
        if sync {
            fs.fsync(self.file)?;
        }
        Ok(())
    }

    /// Delete the log (after a successful memtable flush).
    pub fn remove(self, fs: &BlockFs) -> Result<()> {
        fs.unlink(&self.path)?;
        Ok(())
    }

    /// Replay the WAL at `path`, returning exactly the prefix of records
    /// whose frames are intact. A torn tail (short frame) or a
    /// checksum-mismatching frame — both the signature of a record that
    /// was mid-write at crash time — ends the replay cleanly rather than
    /// failing recovery; every record the store acknowledged before the
    /// crash precedes the damage, so the prefix is the durable state.
    pub fn replay(fs: &BlockFs, path: &str) -> Result<Vec<WalRecord>> {
        let file = fs.open(path)?;
        let size = fs.len(file)?;
        let mut records = Vec::new();
        let mut off = 0u64;
        while off + 8 <= size {
            let header = fs.read_exact_at(file, off, 8)?;
            let crc = le_u32(&header, 0);
            let len = le_u32(&header, 4) as u64;
            if off + 8 + len > size {
                break; // torn tail: record was being written at crash time
            }
            let payload = fs.read_exact_at(file, off + 8, len as usize)?;
            if crc32(&payload) != crc {
                break; // bit damage in the tail: stop at the valid prefix
            }
            records.push(WalRecord::decode(&payload)?);
            off += 8 + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_blockfs::FsConfig;
    use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
    use kvcsd_sim::{config::CostModel, HardwareSpec, IoLedger};
    use std::sync::Arc;

    fn fs() -> BlockFs {
        let geom = FlashGeometry {
            channels: 4,
            blocks_per_channel: 64,
            pages_per_block: 16,
            page_bytes: 512,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        BlockFs::format(dev, CostModel::default(), FsConfig::default())
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_replay_roundtrip() {
        let fs = fs();
        let wal = Wal::create(&fs, "000001.log").unwrap();
        let records = vec![
            WalRecord::Put {
                seq: 1,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete {
                seq: 2,
                key: b"a".to_vec(),
            },
            WalRecord::Put {
                seq: 3,
                key: b"bb".to_vec(),
                value: vec![0; 100],
            },
        ];
        for r in &records {
            wal.append(&fs, r, false).unwrap();
        }
        fs.fsync(fs.open("000001.log").unwrap()).unwrap();
        assert_eq!(Wal::replay(&fs, "000001.log").unwrap(), records);
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let fs = fs();
        let wal = Wal::create(&fs, "wal").unwrap();
        wal.append(
            &fs,
            &WalRecord::Put {
                seq: 1,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            false,
        )
        .unwrap();
        // Simulate a torn write: frame header promising more than exists.
        let f = fs.open("wal").unwrap();
        fs.append(f, &[0u8; 4]).unwrap(); // bogus crc
        fs.append(f, &1000u32.to_le_bytes()).unwrap(); // len > remaining
        let replayed = Wal::replay(&fs, "wal").unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn replay_stops_at_corrupt_tail_frame() {
        let fs = fs();
        let wal = Wal::create(&fs, "wal").unwrap();
        // One good frame, then a frame whose crc does not match its
        // payload: replay recovers exactly the valid prefix.
        let payload = WalRecord::Put {
            seq: 1,
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        wal.append(&fs, &payload, false).unwrap();
        let f = fs.open("wal").unwrap();
        let mut bad = Vec::new();
        bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bad.extend_from_slice(&13u32.to_le_bytes());
        bad.extend_from_slice(&[1u8; 13]);
        fs.append(f, &bad).unwrap();
        assert_eq!(Wal::replay(&fs, "wal").unwrap(), vec![payload]);
    }

    #[test]
    fn create_replaces_stale_log() {
        let fs = fs();
        let wal = Wal::create(&fs, "wal").unwrap();
        wal.append(
            &fs,
            &WalRecord::Delete {
                seq: 9,
                key: b"x".to_vec(),
            },
            false,
        )
        .unwrap();
        let wal2 = Wal::create(&fs, "wal").unwrap();
        let _ = wal2;
        assert_eq!(Wal::replay(&fs, "wal").unwrap(), vec![]);
    }

    #[test]
    fn remove_deletes_file() {
        let fs = fs();
        let wal = Wal::create(&fs, "wal").unwrap();
        wal.remove(&fs).unwrap();
        assert!(!fs.exists("wal"));
    }

    #[test]
    fn sync_writes_pages_immediately() {
        let fs = fs();
        let wal = Wal::create(&fs, "wal").unwrap();
        let before = fs.stats().data_page_writes;
        wal.append(
            &fs,
            &WalRecord::Put {
                seq: 1,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            true,
        )
        .unwrap();
        assert!(
            fs.stats().data_page_writes > before,
            "sync append must hit the device"
        );
    }
}
