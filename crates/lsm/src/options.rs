//! Tuning options for the LSM baseline, mirroring the RocksDB options the
//! paper's evaluation exercises.

/// When compaction work is performed — the three modes of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// RocksDB default: compaction runs as data is inserted.
    Automatic,
    /// "Compaction is manually held until after all keys are inserted":
    /// nothing runs until [`crate::Db::compact_all`].
    Deferred,
    /// Compaction disabled entirely; reads merge across all L0 runs.
    Disabled,
}

/// Database options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Flush the memtable to an L0 table once it holds this many bytes of
    /// raw key+value data (RocksDB `write_buffer_size`).
    pub memtable_bytes: usize,
    /// Schedule an L0->L1 compaction at this many L0 files
    /// (`level0_file_num_compaction_trigger`).
    pub l0_compaction_trigger: usize,
    /// Stall writes at this many L0 files (`level0_stop_writes_trigger`).
    /// Stalled work is surfaced in [`crate::DbStats::stall_events`].
    pub l0_stall_trigger: usize,
    /// Target size of L1 in bytes (`max_bytes_for_level_base`).
    pub level_base_bytes: u64,
    /// Size ratio between adjacent levels (`max_bytes_for_level_multiplier`).
    pub level_multiplier: u64,
    /// Split compaction outputs at this many raw bytes (`target_file_size_base`).
    pub target_file_bytes: usize,
    /// Number of levels below L0.
    pub max_levels: usize,
    /// Data block size (RocksDB default 4 KiB, matching the NAND page).
    pub block_bytes: usize,
    /// Bloom filter bits per key (0 disables blooms).
    pub bloom_bits_per_key: usize,
    /// Restart-point interval inside data blocks.
    pub restart_interval: usize,
    /// Compaction scheduling mode.
    pub compaction: CompactionMode,
    /// Write WAL records for every put/delete.
    pub wal: bool,
    /// fsync the WAL on every write (the paper notes production HPC apps
    /// usually leave this off and rely on checkpoint/restart).
    pub sync_wal: bool,
    /// Block cache capacity in blocks (RocksDB's "aggressive client-side
    /// caching" in the paper's GET experiments).
    pub block_cache_blocks: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            memtable_bytes: 1 << 20,
            l0_compaction_trigger: 4,
            l0_stall_trigger: 20,
            level_base_bytes: 4 << 20,
            level_multiplier: 10,
            target_file_bytes: 1 << 20,
            max_levels: 6,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
            restart_interval: 16,
            compaction: CompactionMode::Automatic,
            wal: true,
            sync_wal: false,
            block_cache_blocks: 8192,
        }
    }
}

impl Options {
    /// Byte budget of level `n` (1-based below L0).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.level_base_bytes * self.level_multiplier.pow(level as u32 - 1)
    }

    /// Options scaled for small experiment datasets: shrinks the memtable
    /// and level sizes proportionally so flushes and compactions occur at
    /// the same *relative* frequency as a full-size run.
    pub fn scaled(scale_divisor: u64) -> Self {
        let mut o = Self::default();
        let d = scale_divisor.max(1) as usize;
        o.memtable_bytes = (o.memtable_bytes / d).max(64 << 10);
        o.level_base_bytes = (o.level_base_bytes / d as u64).max(256 << 10);
        o.target_file_bytes = (o.target_file_bytes / d).max(64 << 10);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_by_multiplier() {
        let o = Options::default();
        assert_eq!(o.level_target_bytes(1), 4 << 20);
        assert_eq!(o.level_target_bytes(2), 40 << 20);
        assert_eq!(o.level_target_bytes(3), 400 << 20);
    }

    #[test]
    fn scaled_options_have_floors() {
        let o = Options::scaled(1_000_000);
        assert_eq!(o.memtable_bytes, 64 << 10);
        assert_eq!(o.level_base_bytes, 256 << 10);
    }

    #[test]
    fn default_matches_rocksdb_flavor() {
        let o = Options::default();
        assert_eq!(o.l0_compaction_trigger, 4);
        assert_eq!(o.block_bytes, 4096);
        assert_eq!(o.compaction, CompactionMode::Automatic);
        assert!(o.wal && !o.sync_wal);
    }
}
