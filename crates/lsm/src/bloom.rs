//! Bloom filters for SSTables (RocksDB-style full filters).
//!
//! Double hashing over two 64-bit seeds gives the `k` probe positions;
//! `k` is derived from the configured bits-per-key as `0.69 * bits`,
//! clamped to `[1, 30]`, matching the classic optimum `k = ln2 * m/n`.

/// An immutable bloom filter over a set of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn hash64(data: &[u8], seed: u64) -> u64 {
    // FNV-1a with a seed fold; cheap and adequate for filter probes.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Build a filter over `keys` with `bits_per_key` bits of budget each.
    pub fn build<'a>(
        keys: impl Iterator<Item = &'a [u8]>,
        n_keys: usize,
        bits_per_key: usize,
    ) -> Self {
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let n_bits = (n_keys * bits_per_key).max(64);
        let n_bytes = n_bits.div_ceil(8);
        let mut bits = vec![0u8; n_bytes];
        let n_bits = n_bytes * 8;
        for key in keys {
            let h1 = hash64(key, 0x51_7c_c1_b7);
            let h2 = hash64(key, 0x27_22_0a_95);
            for i in 0..k {
                let pos = (h1.wrapping_add((i as u64).wrapping_mul(h2)) % n_bits as u64) as usize;
                bits[pos / 8] |= 1 << (pos % 8);
            }
        }
        Self { bits, k }
    }

    /// True if `key` *may* be in the set; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let n_bits = self.bits.len() * 8;
        if n_bits == 0 {
            return true;
        }
        let h1 = hash64(key, 0x51_7c_c1_b7);
        let h2 = hash64(key, 0x27_22_0a_95);
        for i in 0..self.k {
            let pos = (h1.wrapping_add((i as u64).wrapping_mul(h2)) % n_bits as u64) as usize;
            if self.bits[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize as `k:u32 | bits`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        if !(1..=30).contains(&k) {
            return None;
        }
        Some(Self {
            bits: data[4..].to_vec(),
            k,
        })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(2000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        for k in &ks {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(2000);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if f.may_contain(format!("absent-{i:08}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key targets ~1%; allow generous slack for the cheap hash.
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ks = keys(100);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 10);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = BloomFilter::decode(&enc).unwrap();
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0, 0, 0, 0]).is_none()); // k = 0
        assert!(BloomFilter::decode(&[200, 0, 0, 0, 1]).is_none()); // k = 200
    }

    #[test]
    fn empty_set_filter_rejects_probes_mostly() {
        let f = BloomFilter::build(std::iter::empty(), 0, 10);
        // An empty filter has no bits set: everything is definitely absent.
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn one_bit_per_key_still_works() {
        let ks = keys(50);
        let f = BloomFilter::build(ks.iter().map(|k| k.as_slice()), ks.len(), 1);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }
}
