//! The on-disk sorted table format.
//!
//! Layout (offsets grow left to right):
//!
//! ```text
//! [data block]*  [filter block]  [index block]  [footer: 36 B]
//! ```
//!
//! * **Data blocks** hold entries in key order with RocksDB-style restart
//!   points: every `restart_interval`-th entry stores its full key, the
//!   ones in between share a prefix with their predecessor
//!   (`shared:u16 | non_shared:u16 | vlen:u32 | kind:u8 | seq:u64 |
//!   key_suffix | value`). A trailer lists restart offsets.
//! * The **filter block** is a bloom filter over all user keys.
//! * The **index block** maps each data block's last key to its file span.
//! * The **footer** locates index and filter and carries a magic number.
//!
//! Readers keep the decoded index and filter in memory (as RocksDB pins
//! them via its table cache) and fetch data blocks through a shared block
//! cache.

use std::sync::Arc;

use kvcsd_blockfs::{fs::FileId, BlockFs, LruCache};
use kvcsd_sim::bytes::{le_u16, le_u32, le_u64, try_le_u16, try_le_u32, try_le_u64};
use kvcsd_sim::config::CostModel;
use kvcsd_sim::sync::Mutex;

use crate::bloom::BloomFilter;
use crate::error::LsmError;
use crate::Result;

const MAGIC: u32 = 0x4B56_5353; // "KVSS"
const FOOTER_BYTES: usize = 36;

const KIND_PUT: u8 = 1;
const KIND_DEL: u8 = 2;

/// One decoded table entry. `value == None` is a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub key: Vec<u8>,
    pub seq: u64,
    pub value: Option<Vec<u8>>,
}

/// Shared cache of decoded data blocks, keyed by (table id, block index).
pub type BlockCache = Mutex<LruCache<(u64, u32), Arc<Vec<Entry>>>>;

/// Create a block cache holding `blocks` decoded blocks.
pub fn new_block_cache(blocks: usize) -> Arc<BlockCache> {
    Arc::new(Mutex::new(LruCache::new(blocks)))
}

#[derive(Debug, Clone)]
struct IndexEntry {
    last_key: Vec<u8>,
    offset: u64,
    len: u32,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streams sorted entries into a new table file.
pub struct TableBuilder<'a> {
    fs: &'a BlockFs,
    file: FileId,
    path: String,
    id: u64,
    block_bytes: usize,
    restart_interval: usize,
    bloom_bits_per_key: usize,
    // current block state
    block: Vec<u8>,
    restarts: Vec<u32>,
    entries_in_block: usize,
    prev_key: Vec<u8>,
    // table state
    offset: u64,
    index: Vec<IndexEntry>,
    keys: Vec<Vec<u8>>,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
    count: u64,
}

impl<'a> TableBuilder<'a> {
    /// Start building `path` on `fs`.
    pub fn create(
        fs: &'a BlockFs,
        path: &str,
        id: u64,
        block_bytes: usize,
        restart_interval: usize,
        bloom_bits_per_key: usize,
    ) -> Result<Self> {
        let file = fs.create(path)?;
        Ok(Self {
            fs,
            file,
            path: path.to_string(),
            id,
            block_bytes,
            restart_interval: restart_interval.max(1),
            bloom_bits_per_key,
            block: Vec::with_capacity(block_bytes + 256),
            restarts: Vec::new(),
            entries_in_block: 0,
            prev_key: Vec::new(),
            offset: 0,
            index: Vec::new(),
            keys: Vec::new(),
            first_key: None,
            last_key: Vec::new(),
            count: 0,
        })
    }

    /// Append an entry. Keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], seq: u64, value: Option<&[u8]>) -> Result<()> {
        debug_assert!(
            self.count == 0 || key > self.last_key.as_slice(),
            "keys must be strictly increasing"
        );
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }

        let restart = self.entries_in_block.is_multiple_of(self.restart_interval);
        if restart {
            self.restarts.push(self.block.len() as u32);
        }
        let shared = if restart {
            0
        } else {
            self.prev_key
                .iter()
                .zip(key)
                .take_while(|(a, b)| a == b)
                .count()
        };
        let non_shared = key.len() - shared;
        let (kind, vbytes): (u8, &[u8]) = match value {
            Some(v) => (KIND_PUT, v),
            None => (KIND_DEL, &[]),
        };
        self.block.extend_from_slice(&(shared as u16).to_le_bytes());
        self.block
            .extend_from_slice(&(non_shared as u16).to_le_bytes());
        self.block
            .extend_from_slice(&(vbytes.len() as u32).to_le_bytes());
        self.block.push(kind);
        self.block.extend_from_slice(&seq.to_le_bytes());
        self.block.extend_from_slice(&key[shared..]);
        self.block.extend_from_slice(vbytes);

        self.entries_in_block += 1;
        self.prev_key = key.to_vec();
        self.last_key = key.to_vec();
        self.keys.push(key.to_vec());
        self.count += 1;
        // Encoding work (framing + checksummable bytes) on the host.
        self.fs.device().nand().ledger().charge_host_cpu(
            (key.len() + vbytes.len() + 17) as f64 * self.fs.cost().codec_ns_per_byte,
        );

        if self.block.len() >= self.block_bytes {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.entries_in_block == 0 {
            return Ok(());
        }
        for r in &self.restarts {
            self.block.extend_from_slice(&r.to_le_bytes());
        }
        self.block
            .extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        self.fs.append(self.file, &self.block)?;
        self.index.push(IndexEntry {
            last_key: self.last_key.clone(),
            offset: self.offset,
            len: self.block.len() as u32,
        });
        self.offset += self.block.len() as u64;
        self.block.clear();
        self.restarts.clear();
        self.entries_in_block = 0;
        self.prev_key.clear();
        Ok(())
    }

    /// Finish the table: write filter, index and footer, fsync, and return
    /// an opened [`Table`].
    pub fn finish(mut self) -> Result<Table> {
        self.flush_block()?;

        self.fs
            .device()
            .nand()
            .ledger()
            .charge_host_cpu(self.keys.len() as f64 * self.fs.cost().bloom_op_ns);
        let filter = if self.bloom_bits_per_key > 0 && !self.keys.is_empty() {
            Some(BloomFilter::build(
                self.keys.iter().map(|k| k.as_slice()),
                self.keys.len(),
                self.bloom_bits_per_key,
            ))
        } else {
            None
        };
        let filter_bytes = filter.as_ref().map(|f| f.encode()).unwrap_or_default();
        let filter_off = self.offset;
        self.fs.append(self.file, &filter_bytes)?;
        self.offset += filter_bytes.len() as u64;

        let mut index_bytes = Vec::new();
        index_bytes.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            index_bytes.extend_from_slice(&(e.last_key.len() as u16).to_le_bytes());
            index_bytes.extend_from_slice(&e.last_key);
            index_bytes.extend_from_slice(&e.offset.to_le_bytes());
            index_bytes.extend_from_slice(&e.len.to_le_bytes());
        }
        let index_off = self.offset;
        self.fs.append(self.file, &index_bytes)?;
        self.offset += index_bytes.len() as u64;

        let mut footer = Vec::with_capacity(FOOTER_BYTES);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_bytes.len() as u32).to_le_bytes());
        footer.extend_from_slice(&filter_off.to_le_bytes());
        footer.extend_from_slice(&(filter_bytes.len() as u32).to_le_bytes());
        footer.extend_from_slice(&self.count.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.fs.append(self.file, &footer)?;
        self.fs.fsync(self.file)?;

        Ok(Table {
            id: self.id,
            path: self.path,
            file: self.file,
            first_key: self.first_key.unwrap_or_default(),
            last_key: self.last_key,
            entry_count: self.count,
            file_bytes: self.offset + FOOTER_BYTES as u64,
            index: self.index,
            filter,
        })
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An open, immutable sorted table.
#[derive(Debug)]
pub struct Table {
    pub id: u64,
    pub path: String,
    file: FileId,
    pub first_key: Vec<u8>,
    pub last_key: Vec<u8>,
    pub entry_count: u64,
    pub file_bytes: u64,
    index: Vec<IndexEntry>,
    filter: Option<BloomFilter>,
}

impl Table {
    /// Open an existing table file, loading footer, index and filter.
    pub fn open(fs: &BlockFs, path: &str, id: u64) -> Result<Table> {
        let file = fs.open(path)?;
        let size = fs.len(file)?;
        if size < FOOTER_BYTES as u64 {
            return Err(LsmError::Corruption(format!(
                "{path}: too small for footer"
            )));
        }
        let footer = fs.read_exact_at(file, size - FOOTER_BYTES as u64, FOOTER_BYTES)?;
        let magic = le_u32(&footer, 32);
        if magic != MAGIC {
            return Err(LsmError::Corruption(format!(
                "{path}: bad magic {magic:#x}"
            )));
        }
        let index_off = le_u64(&footer, 0);
        let index_len = le_u32(&footer, 8) as usize;
        let filter_off = le_u64(&footer, 12);
        let filter_len = le_u32(&footer, 20) as usize;
        let entry_count = le_u64(&footer, 24);

        let index_bytes = fs.read_exact_at(file, index_off, index_len)?;
        let mut index = Vec::new();
        let mut p = 4usize;
        let n = try_le_u32(&index_bytes, 0).ok_or_else(|| corrupt(path, "index header"))? as usize;
        for _ in 0..n {
            let klen =
                try_le_u16(&index_bytes, p).ok_or_else(|| corrupt(path, "index klen"))? as usize;
            p += 2;
            let last_key = index_bytes
                .get(p..p + klen)
                .ok_or_else(|| corrupt(path, "index key"))?
                .to_vec();
            p += klen;
            let offset = try_le_u64(&index_bytes, p).ok_or_else(|| corrupt(path, "index off"))?;
            p += 8;
            let len = try_le_u32(&index_bytes, p).ok_or_else(|| corrupt(path, "index len"))?;
            p += 4;
            index.push(IndexEntry {
                last_key,
                offset,
                len,
            });
        }

        let filter = if filter_len > 0 {
            let fb = fs.read_exact_at(file, filter_off, filter_len)?;
            Some(BloomFilter::decode(&fb).ok_or_else(|| corrupt(path, "filter"))?)
        } else {
            None
        };

        let (first_key, last_key) = if index.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            // First key requires decoding the first block's first entry.
            let block = Self::decode_block_raw(&fs.read_exact_at(
                file,
                index[0].offset,
                index[0].len as usize,
            )?)
            .map_err(|e| LsmError::Corruption(format!("{path}: {e}")))?;
            (
                block.first().map(|e| e.key.clone()).unwrap_or_default(),
                index.last().map(|e| e.last_key.clone()).unwrap_or_default(),
            )
        };

        Ok(Table {
            id,
            path: path.to_string(),
            file,
            first_key,
            last_key,
            entry_count,
            file_bytes: size,
            index,
            filter,
        })
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    fn decode_block_raw(raw: &[u8]) -> std::result::Result<Vec<Entry>, String> {
        if raw.len() < 4 {
            return Err("block too small".into());
        }
        let n_restarts = le_u32(raw, raw.len() - 4) as usize;
        let trailer = 4 + n_restarts * 4;
        if raw.len() < trailer {
            return Err("bad restart trailer".into());
        }
        let data_end = raw.len() - trailer;
        let mut entries = Vec::new();
        let mut p = 0usize;
        let mut prev_key: Vec<u8> = Vec::new();
        while p < data_end {
            if p + 17 > data_end {
                return Err("truncated entry header".into());
            }
            let shared = le_u16(raw, p) as usize;
            let non_shared = le_u16(raw, p + 2) as usize;
            let vlen = le_u32(raw, p + 4) as usize;
            let kind = raw[p + 8];
            let seq = le_u64(raw, p + 9);
            p += 17;
            if p + non_shared + vlen > data_end || shared > prev_key.len() {
                return Err("truncated entry body".into());
            }
            let mut key = Vec::with_capacity(shared + non_shared);
            key.extend_from_slice(&prev_key[..shared]);
            key.extend_from_slice(&raw[p..p + non_shared]);
            p += non_shared;
            let value = match kind {
                KIND_PUT => Some(raw[p..p + vlen].to_vec()),
                KIND_DEL => None,
                other => return Err(format!("bad entry kind {other}")),
            };
            p += vlen;
            prev_key = key.clone();
            entries.push(Entry { key, seq, value });
        }
        Ok(entries)
    }

    /// Fetch (and decode) data block `ix`, through the shared cache.
    pub fn load_block(
        &self,
        fs: &BlockFs,
        cost: &CostModel,
        cache: &BlockCache,
        ix: u32,
    ) -> Result<Arc<Vec<Entry>>> {
        if let Some(hit) = cache.lock().get(&(self.id, ix)).map(Arc::clone) {
            fs.device().nand().ledger().bump("lsm_block_cache_hit", 1);
            return Ok(hit);
        }
        fs.device().nand().ledger().bump("lsm_block_cache_miss", 1);
        let ie = &self.index[ix as usize];
        let raw = fs.read_exact_at(self.file, ie.offset, ie.len as usize)?;
        fs.device()
            .nand()
            .ledger()
            .charge_host_cpu(raw.len() as f64 * cost.codec_ns_per_byte);
        let entries = Arc::new(
            Self::decode_block_raw(&raw)
                .map_err(|e| LsmError::Corruption(format!("{}: {e}", self.path)))?,
        );
        cache.lock().insert((self.id, ix), Arc::clone(&entries));
        Ok(entries)
    }

    /// Point lookup. Charges bloom and comparison costs to the ledger.
    pub fn get(
        &self,
        fs: &BlockFs,
        cost: &CostModel,
        cache: &BlockCache,
        key: &[u8],
    ) -> Result<Option<Entry>> {
        let ledger = fs.device().nand().ledger();
        if let Some(f) = &self.filter {
            ledger.charge_host_cpu(cost.bloom_op_ns);
            if !f.may_contain(key) {
                ledger.bump("lsm_bloom_negative", 1);
                return Ok(None);
            }
        }
        // Binary search the index for the first block whose last_key >= key.
        let ix = self.index.partition_point(|e| e.last_key.as_slice() < key);
        ledger.charge_host_cpu(cost.key_cmp_ns * (self.index.len().max(2) as f64).log2());
        if ix == self.index.len() {
            return Ok(None);
        }
        let block = self.load_block(fs, cost, cache, ix as u32)?;
        ledger.charge_host_cpu(cost.key_cmp_ns * (block.len().max(2) as f64).log2());
        match block.binary_search_by(|e| e.key.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(block[i].clone())),
            Err(_) => Ok(None),
        }
    }

    /// Iterate every entry of the table in key order.
    pub fn iter<'t>(
        &'t self,
        fs: &'t BlockFs,
        cost: &'t CostModel,
        cache: &'t BlockCache,
    ) -> TableIter<'t> {
        TableIter {
            table: self,
            fs,
            cost,
            cache,
            block_ix: 0,
            block: None,
            pos: 0,
        }
    }

    /// Iterate from the first entry with key >= `lo`, skipping earlier
    /// blocks entirely (no I/O for them).
    pub fn iter_from<'t>(
        &'t self,
        fs: &'t BlockFs,
        cost: &'t CostModel,
        cache: &'t BlockCache,
        lo: &[u8],
    ) -> TableIter<'t> {
        let start = self.index.partition_point(|e| e.last_key.as_slice() < lo) as u32;
        let mut it = TableIter {
            table: self,
            fs,
            cost,
            cache,
            block_ix: start,
            block: None,
            pos: 0,
        };
        // Position within the starting block.
        if (start as usize) < self.index.len() {
            if let Ok(block) = self.load_block(fs, cost, cache, start) {
                it.pos = block.partition_point(|e| e.key.as_slice() < lo);
                it.block = Some(block);
            }
        }
        it
    }

    /// Delete the table's file.
    pub fn remove(&self, fs: &BlockFs) -> Result<()> {
        fs.unlink(&self.path)?;
        Ok(())
    }
}

fn corrupt(path: &str, what: &str) -> LsmError {
    LsmError::Corruption(format!("{path}: malformed {what}"))
}

/// Sequential iterator over a table's entries.
pub struct TableIter<'t> {
    table: &'t Table,
    fs: &'t BlockFs,
    cost: &'t CostModel,
    cache: &'t BlockCache,
    block_ix: u32,
    block: Option<Arc<Vec<Entry>>>,
    pos: usize,
}

impl Iterator for TableIter<'_> {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(block) = &self.block {
                if self.pos < block.len() {
                    let e = block[self.pos].clone();
                    self.pos += 1;
                    return Some(Ok(e));
                }
                self.block = None;
                self.block_ix += 1;
                self.pos = 0;
            }
            if self.block_ix as usize >= self.table.block_count() {
                return None;
            }
            match self
                .table
                .load_block(self.fs, self.cost, self.cache, self.block_ix)
            {
                Ok(b) => self.block = Some(b),
                Err(e) => {
                    self.block_ix = u32::MAX; // poison
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcsd_blockfs::FsConfig;
    use kvcsd_flash::{ConvConfig, ConventionalNamespace, FlashGeometry, NandArray};
    use kvcsd_sim::{HardwareSpec, IoLedger};

    fn fs() -> BlockFs {
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 128,
            pages_per_block: 32,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &HardwareSpec::default(), ledger));
        let dev = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        BlockFs::format(dev, CostModel::default(), FsConfig::default())
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    fn build(fs: &BlockFs, n: u32, bloom: usize) -> Table {
        let mut b = TableBuilder::create(fs, "000001.sst", 1, 4096, 16, bloom).unwrap();
        for i in 0..n {
            if i % 10 == 3 {
                b.add(&key(i), i as u64, None).unwrap(); // sprinkle tombstones
            } else {
                b.add(&key(i), i as u64, Some(format!("value-{i}").as_bytes()))
                    .unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn build_open_get_roundtrip() {
        let fs = fs();
        let t = build(&fs, 1000, 10);
        assert_eq!(t.entry_count, 1000);
        assert_eq!(t.first_key, key(0));
        assert_eq!(t.last_key, key(999));
        assert!(
            t.block_count() > 1,
            "1000 entries should span multiple blocks"
        );

        let reopened = Table::open(&fs, "000001.sst", 1).unwrap();
        assert_eq!(reopened.entry_count, 1000);
        assert_eq!(reopened.first_key, t.first_key);
        assert_eq!(reopened.last_key, t.last_key);

        let cost = CostModel::default();
        let cache = new_block_cache(64);
        for i in [0u32, 1, 3, 499, 999] {
            let e = reopened.get(&fs, &cost, &cache, &key(i)).unwrap().unwrap();
            assert_eq!(e.seq, i as u64);
            if i % 10 == 3 {
                assert_eq!(e.value, None, "tombstone preserved");
            } else {
                assert_eq!(e.value, Some(format!("value-{i}").into_bytes()));
            }
        }
        assert!(reopened.get(&fs, &cost, &cache, b"zzz").unwrap().is_none());
        assert!(reopened
            .get(&fs, &cost, &cache, b"absent")
            .unwrap()
            .is_none());
    }

    #[test]
    fn iterator_returns_all_entries_in_order() {
        let fs = fs();
        let t = build(&fs, 500, 10);
        let cost = CostModel::default();
        let cache = new_block_cache(64);
        let entries: Vec<Entry> = t.iter(&fs, &cost, &cache).map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 500);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.key, key(i as u32));
        }
        assert!(entries.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn bloom_filter_short_circuits_absent_keys() {
        let fs = fs();
        let t = build(&fs, 200, 10);
        let cost = CostModel::default();
        let cache = new_block_cache(64);
        let ledger = fs.device().nand().ledger();
        let miss0 = ledger.custom("lsm_block_cache_miss");
        let mut negatives = 0;
        for i in 0..200 {
            if t.get(&fs, &cost, &cache, format!("nope-{i}").as_bytes())
                .unwrap()
                .is_none()
            {
                negatives += 1;
            }
        }
        assert_eq!(negatives, 200);
        let bloom_neg = ledger.custom("lsm_bloom_negative");
        assert!(
            bloom_neg > 180,
            "bloom should reject most absent keys, got {bloom_neg}"
        );
        // Bloom negatives never touch data blocks.
        assert!(ledger.custom("lsm_block_cache_miss") - miss0 <= (200 - bloom_neg) + 1);
    }

    #[test]
    fn block_cache_hits_avoid_device_reads() {
        let fs = fs();
        let t = build(&fs, 300, 10);
        fs.drop_caches();
        let cost = CostModel::default();
        let cache = new_block_cache(64);
        let before = fs.device().nand().ledger().snapshot();
        t.get(&fs, &cost, &cache, &key(42)).unwrap().unwrap();
        let after_first = fs.device().nand().ledger().snapshot();
        assert!(after_first.since(&before).nand_read_pages > 0);
        t.get(&fs, &cost, &cache, &key(42)).unwrap().unwrap();
        let after_second = fs.device().nand().ledger().snapshot();
        assert_eq!(after_second.since(&after_first).nand_read_pages, 0);
    }

    #[test]
    fn no_bloom_still_correct() {
        let fs = fs();
        let t = build(&fs, 100, 0);
        let cost = CostModel::default();
        let cache = new_block_cache(16);
        assert!(t.get(&fs, &cost, &cache, &key(5)).unwrap().is_some());
        assert!(t.get(&fs, &cost, &cache, b"absent").unwrap().is_none());
    }

    #[test]
    fn single_entry_table() {
        let fs = fs();
        let mut b = TableBuilder::create(&fs, "t.sst", 9, 4096, 16, 10).unwrap();
        b.add(b"only", 7, Some(b"one")).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.entry_count, 1);
        assert_eq!(t.first_key, b"only");
        assert_eq!(t.last_key, b"only");
        let cost = CostModel::default();
        let cache = new_block_cache(4);
        let e = t.get(&fs, &cost, &cache, b"only").unwrap().unwrap();
        assert_eq!(e.value, Some(b"one".to_vec()));
    }

    #[test]
    fn open_rejects_garbage() {
        let fs = fs();
        let f = fs.create("junk.sst").unwrap();
        fs.append(f, &[0u8; 100]).unwrap();
        assert!(matches!(
            Table::open(&fs, "junk.sst", 1),
            Err(LsmError::Corruption(_))
        ));
        let g = fs.create("short.sst").unwrap();
        fs.append(g, &[0u8; 10]).unwrap();
        assert!(Table::open(&fs, "short.sst", 2).is_err());
    }

    #[test]
    fn remove_deletes_file() {
        let fs = fs();
        let t = build(&fs, 10, 10);
        t.remove(&fs).unwrap();
        assert!(!fs.exists("000001.sst"));
    }

    #[test]
    fn prefix_compression_shrinks_files() {
        let fs = fs();
        // Highly shared prefixes.
        let mut b = TableBuilder::create(&fs, "a.sst", 1, 4096, 16, 0).unwrap();
        for i in 0..1000u32 {
            b.add(
                format!("common/long/prefix/{i:08}").as_bytes(),
                0,
                Some(b"x"),
            )
            .unwrap();
        }
        let ta = b.finish().unwrap();
        // Same data but restart at every entry (no sharing).
        let mut b = TableBuilder::create(&fs, "b.sst", 2, 4096, 1, 0).unwrap();
        for i in 0..1000u32 {
            b.add(
                format!("common/long/prefix/{i:08}").as_bytes(),
                0,
                Some(b"x"),
            )
            .unwrap();
        }
        let tb = b.finish().unwrap();
        assert!(
            (ta.file_bytes as f64) < 0.8 * tb.file_bytes as f64,
            "prefix compression should shrink the file: {} vs {}",
            ta.file_bytes,
            tb.file_bytes
        );
    }

    #[test]
    fn values_up_to_pages_roundtrip() {
        let fs = fs();
        let mut b = TableBuilder::create(&fs, "big.sst", 3, 4096, 16, 10).unwrap();
        let big = vec![0xCD; 4096];
        b.add(b"big0", 1, Some(&big)).unwrap();
        b.add(b"big1", 2, Some(&big)).unwrap();
        let t = b.finish().unwrap();
        let cost = CostModel::default();
        let cache = new_block_cache(8);
        let e = t.get(&fs, &cost, &cache, b"big1").unwrap().unwrap();
        assert_eq!(e.value.unwrap(), big);
    }
}
