//! A software LSM-tree key-value store: the RocksDB-analog baseline.
//!
//! The paper evaluates KV-CSD against RocksDB running on ext4. This crate
//! is a from-scratch reimplementation of the RocksDB architecture *on top
//! of the simulated stack* (`kvcsd-blockfs` over the conventional-namespace
//! SSD), so that its write amplification, read inflation and host CPU
//! consumption are measured from real execution:
//!
//! * [`memtable`] — an ordered in-memory write buffer with sequence
//!   numbers and tombstones;
//! * [`wal`] — a checksummed write-ahead log with replay;
//! * [`bloom`] — per-table bloom filters;
//! * [`sstable`] — the on-disk table format: prefix-compressed 4 KiB data
//!   blocks with restart points, an index block and a bloom filter;
//! * [`compaction`] — leveled compaction with L0 file triggers, write
//!   stalls, and the three modes the paper benchmarks (automatic,
//!   deferred, disabled);
//! * [`db`] — the embedding API: `put/get/delete/scan/compact_all/flush`;
//! * [`secondary`] — the host-side auxiliary-key secondary index scheme
//!   the paper's macro benchmark uses (1-byte prefix namespacing).
//!
//! ### A note on background threads
//!
//! RocksDB runs compaction on background threads that, in the paper's
//! setup, are pinned to the same cores as the foreground test threads. In
//! this reproduction compaction executes inline at the trigger points but
//! is *attributed* identically: all host CPU work lands in the same
//! ledger, and the time model divides total work by the cores available —
//! which is exactly the steady-state behaviour of pinned background
//! threads sharing cores with the foreground. This keeps runs
//! deterministic without changing the phase-time arithmetic.

pub mod bloom;
pub mod compaction;
pub mod db;
pub mod error;
pub mod iterator;
pub mod memtable;
pub mod options;
pub mod secondary;
pub mod sstable;
pub mod version;
pub mod wal;

pub use db::{Db, DbStats};
pub use error::LsmError;
pub use options::{CompactionMode, Options};
pub use secondary::{aux_key, primary_key, split_aux, AUX_PREFIX, PRIMARY_PREFIX};

/// Result alias for LSM operations.
pub type Result<T> = std::result::Result<T, LsmError>;
