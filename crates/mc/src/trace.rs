//! Replayable counterexample traces.
//!
//! A trace is the serialized schedule of one controlled execution: for
//! every scheduling point, which thread was granted and what operation
//! it had declared (`tid`, op kind, object id). Because the runtime
//! assigns thread and object ids deterministically in first-touch order
//! under a serialized schedule, replaying the same grant sequence against
//! the same harness closure reproduces the same execution — the declared
//! `(kind, obj)` at every step double-checks that nothing diverged.
//!
//! The on-disk format is line-oriented text so a failing CI run's
//! artifact is directly readable:
//!
//! ```text
//! # kvcsd-mc trace v1
//! harness racy-increment
//! step 0 start 0
//! step 1 shared-get 2
//! ```
//!
//! Op kinds are stored by their stable kebab-case names (see
//! `kvcsd_sim::mc::OpKind::name`), not enum discriminants, so traces stay
//! valid across recompiles and readable in both debug and release builds
//! (release builds can parse traces even though they cannot replay them).

use std::path::Path;

const HEADER: &str = "# kvcsd-mc trace v1";

/// One granted scheduling point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Managed thread id (0 = the harness root).
    pub tid: u32,
    /// Stable kebab-case op name (`mutex-lock`, `shared-rmw`, ...).
    pub kind: String,
    /// Sync-object id, or the child tid for `join`.
    pub obj: u64,
}

/// A full counterexample schedule for one named harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Harness name; `KVCSD_MC_REPLAY` only applies a trace to the
    /// harness it was recorded from.
    pub name: String,
    pub steps: Vec<TraceStep>,
}

impl Trace {
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str("harness ");
        out.push_str(&self.name);
        out.push('\n');
        for s in &self.steps {
            out.push_str(&format!("step {} {} {}\n", s.tid, s.kind, s.obj));
        }
        out
    }

    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut name = None;
        let mut steps = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("harness ") {
                name = Some(rest.trim().to_string());
                continue;
            }
            let Some(rest) = line.strip_prefix("step ") else {
                return Err(format!("trace line {}: unrecognized `{line}`", ln + 1));
            };
            let mut it = rest.split_whitespace();
            let (tid, kind, obj) = match (it.next(), it.next(), it.next()) {
                (Some(t), Some(k), Some(o)) => (t, k, o),
                _ => return Err(format!("trace line {}: malformed step `{line}`", ln + 1)),
            };
            let tid: u32 = tid
                .parse()
                .map_err(|_| format!("trace line {}: bad tid `{tid}`", ln + 1))?;
            let obj: u64 = obj
                .parse()
                .map_err(|_| format!("trace line {}: bad obj `{obj}`", ln + 1))?;
            steps.push(TraceStep {
                tid,
                kind: kind.to_string(),
                obj,
            });
        }
        let Some(name) = name else {
            return Err("trace has no `harness <name>` line".to_string());
        };
        Ok(Trace { name, steps })
    }

    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, self.serialize()).map_err(|e| format!("write {}: {e}", path.display()))
    }

    pub fn load(path: &Path) -> Result<Trace, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Trace::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let t = Trace {
            name: "racy-increment".to_string(),
            steps: vec![
                TraceStep {
                    tid: 0,
                    kind: "start".to_string(),
                    obj: 0,
                },
                TraceStep {
                    tid: 2,
                    kind: "shared-rmw".to_string(),
                    obj: 7,
                },
            ],
        };
        let text = t.serialize();
        assert!(text.starts_with(HEADER));
        assert_eq!(Trace::parse(&text).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Trace::parse("step 0 start 0\n").is_err(), "missing harness");
        assert!(Trace::parse("harness x\nstep nope\n").is_err());
        assert!(Trace::parse("harness x\nwat 1 2 3\n").is_err());
        assert!(Trace::parse("harness x\nstep a start 0\n").is_err());
    }
}
