//! Prints the mc baseline: explored-schedule counts per harness, as
//! JSON on stdout. CI runs this (debug profile — the controlled
//! scheduler does not exist in release) and diffs the output against the
//! committed `mc_baseline.json`; a drift means the schedule space of a
//! harness changed (new scheduling points, changed reduction), which is
//! worth a human look even when every schedule still passes.
//!
//! Budgets here are fixed and must stay in sync with `tests/mc.rs`, so
//! the numbers CI diffs are the numbers the test suite actually
//! explores. The DFS is deterministic, so the counts are too.

use kvcsd_mc::{harnesses, McConfig};

fn main() {
    if !cfg!(debug_assertions) {
        eprintln!("mc_baseline requires a debug build: release compiles the scheduler out");
        std::process::exit(2);
    }
    let full = McConfig::default();
    let bounded = McConfig {
        preemption_bound: Some(2),
        ..McConfig::default()
    };
    let naive = McConfig {
        dpor: false,
        ..McConfig::default()
    };

    let mut entries: Vec<(&str, u64)> = Vec::new();
    let mut failed = false;

    for (name, report) in [
        ("admission-bands", harnesses::admission_bands(&full)),
        ("health-promotion", harnesses::health_promotion(&full)),
        ("racy-increment", harnesses::racy_increment(&full)),
        ("replica-dedup-full", harnesses::replica_dedup(&full)),
        ("replica-dedup-pb2", harnesses::replica_dedup(&bounded)),
        ("three-locks-dpor", harnesses::three_locks(&full)),
        ("three-locks-naive", harnesses::three_locks(&naive)),
        ("window-matching", harnesses::window_matching(&full)),
    ] {
        // racy-increment is *supposed* to fail: its baseline entry is
        // the schedule count at which the counterexample is found.
        if name != "racy-increment" {
            if let Some(f) = &report.failure {
                eprintln!("mc_baseline: {name} failed: {:?}: {}", f.kind, f.message);
                failed = true;
            }
        } else if report.failure.is_none() {
            eprintln!("mc_baseline: racy-increment found no counterexample");
            failed = true;
        }
        entries.push((name, report.schedules));
    }

    let net = kvcsd_mc::verify_two_shard(3);
    if let Some(f) = &net.failure {
        eprintln!(
            "mc_baseline: net-two-shard-depth3 failed on {:?}: {}",
            f.script, f.message
        );
        failed = true;
    }
    entries.push(("net-two-shard-depth3", net.runs));

    entries.sort();
    println!("{{");
    let last = entries.len() - 1;
    for (i, (name, count)) in entries.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        println!("  \"{name}\": {count}{comma}");
    }
    println!("}}");

    if failed {
        std::process::exit(1);
    }
}
