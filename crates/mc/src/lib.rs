//! kvcsd-mc: a systematic concurrency and protocol model checker over
//! the `kvcsd-sim` shims.
//!
//! The repo already has two dynamic concurrency oracles — the
//! happens-before race detector and the lock-order detector inside
//! `kvcsd_sim::sync` — plus seeded schedule perturbation
//! (`KVCSD_PERTURB`). All three *sample* interleavings; this crate
//! *enumerates* them:
//!
//! * **Thread interleavings** ([`check`]): runs a harness closure under
//!   the controlled scheduler in `kvcsd_sim::mc`, where every shim
//!   operation (lock/rwlock acquire, `Shared` access, spawn start, join)
//!   is a scheduling point, and explores the schedule tree by DFS with
//!   dynamic partial-order reduction (sleep + backtrack sets), an
//!   optional CHESS-style preemption bound, and optional state-hash
//!   pruning. The race detector and lockdep stay live under every
//!   explored schedule, so one exploration composes all three oracles.
//! * **Network decisions** ([`explore_net`]): enumerates every scripted
//!   bus-fault sequence (drop / duplicate / late / deliver) up to a depth
//!   bound against a deterministic protocol scenario — the 2-shard
//!   replication/failover model in `kvcsd_cluster::model` — and checks
//!   its invariants on each sequence, pruning extensions past what a run
//!   actually consumed.
//!
//! A failing schedule is serialized as a [`Trace`] (see `trace.rs` for
//! the format) and written next to the build artifacts; pointing
//! `KVCSD_MC_REPLAY` at a trace file makes [`check`] replay exactly that
//! schedule instead of exploring, which turns any CI counterexample into
//! a deterministic local repro.
//!
//! Release builds compile the controlled scheduler out: [`check`] runs
//! the closure once, uncontrolled, and says so in the report
//! (`controlled: false`). The network explorer needs no scheduler and
//! works in every profile.

mod net;
mod trace;

pub mod harnesses;

#[cfg(debug_assertions)]
mod explore;

pub use net::{explore_net, net_alphabet, verify_two_shard, NetFailure, NetReport, NET_DEFAULT};
pub use trace::{Trace, TraceStep};

use std::path::PathBuf;
use std::sync::Arc;

/// Exploration budgets and strategy knobs.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Hard cap on executions; hitting it ends exploration with
    /// `completed: false` in the report.
    pub max_schedules: u64,
    /// Per-execution scheduling-point cap; exceeding it is reported as a
    /// [`FailureKind::StepLimit`] counterexample (a livelock, or a
    /// harness too big to enumerate).
    pub max_steps: usize,
    /// CHESS-style bound: maximum number of *preemptive* context
    /// switches per schedule (switching away from a thread whose next op
    /// is still enabled). Forced switches — the running thread blocked
    /// or exited — are free. `None` = unbounded (full exploration).
    /// Bounding is a coverage trade-off, not an unsoundness in what *is*
    /// explored: every schedule within the bound is still a real
    /// schedule.
    pub preemption_bound: Option<u32>,
    /// Dynamic partial-order reduction (sleep sets + backtrack sets).
    /// Off = naive full DFS over every enabled thread at every point;
    /// both modes visit the same reachable local states, DPOR just skips
    /// commuting permutations. Kept togglable so the reduction itself is
    /// testable (`dpor < naive` on schedule counts).
    pub dpor: bool,
    /// Prune executions whose (pending-ops, per-thread progress) hash
    /// was already seen. **Unsound** for harnesses whose behavior
    /// depends on data the hash cannot see (the hash covers control
    /// state only); off by default, useful for quick smoke sweeps of
    /// big harnesses.
    pub hash_pruning: bool,
    /// Where failure traces are written; defaults to
    /// `target/mc-failures/<harness>.mctrace`.
    pub trace_dir: Option<PathBuf>,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            max_schedules: 50_000,
            max_steps: 10_000,
            preemption_bound: None,
            dpor: true,
            hash_pruning: false,
            trace_dir: None,
        }
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A managed thread panicked (assertion, race-detector report,
    /// lockdep cycle — anything that unwinds).
    Panic,
    /// Every live managed thread's declared op was disabled: a modeled
    /// deadlock, found without ever hanging a real thread.
    Deadlock,
    /// The execution exceeded `max_steps` scheduling points.
    StepLimit,
    /// A replay diverged from its trace — the harness is not
    /// deterministic under a fixed schedule, or the trace is stale.
    ReplayDivergence,
}

/// A counterexample: what went wrong and the exact schedule that did it.
#[derive(Debug, Clone)]
pub struct McFailure {
    pub kind: FailureKind,
    pub message: String,
    /// The failing schedule, replayable via [`check`] +
    /// `KVCSD_MC_REPLAY` or [`replay`].
    pub trace: Trace,
    /// Where the trace was written, if serialization succeeded.
    pub trace_file: Option<PathBuf>,
}

/// Outcome of one [`check`] call.
#[derive(Debug, Clone)]
pub struct McReport {
    pub name: String,
    /// Executions run (including DPOR-pruned and replayed ones).
    pub schedules: u64,
    /// True when the explorer exhausted the schedule space within its
    /// budgets; false on budget exhaustion or failure-stop.
    pub completed: bool,
    /// False in release builds (single uncontrolled run).
    pub controlled: bool,
    pub failure: Option<McFailure>,
}

impl McReport {
    /// Panic with the counterexample if the check failed — the idiomatic
    /// test-side assertion.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "kvcsd-mc [{}]: {:?} after {} schedule(s): {}\nschedule ({} steps): {}",
                self.name,
                f.kind,
                self.schedules,
                f.message,
                f.trace.steps.len(),
                f.trace_file
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "<not written>".to_string()),
            );
        }
    }
}

/// Explore every schedule of `f` (within `cfg`'s budgets) under the
/// controlled scheduler, checking for panics and modeled deadlocks.
///
/// `f` runs once per schedule and must be self-contained: construct all
/// state inside the closure, spawn only via `kvcsd_sim::sync::spawn`,
/// and keep every cross-thread interaction on the shim types (raw
/// primitives would block invisibly and trip the no-progress watchdog).
///
/// If `KVCSD_MC_REPLAY` names a trace file recorded from this harness
/// (matched by `name`), the single traced schedule is replayed instead
/// of exploring.
pub fn check<F>(name: &str, cfg: &McConfig, f: F) -> McReport
where
    F: Fn() + Send + Sync + 'static,
{
    check_arc(name, cfg, Arc::new(f))
}

fn check_arc(name: &str, cfg: &McConfig, f: Arc<dyn Fn() + Send + Sync>) -> McReport {
    #[cfg(debug_assertions)]
    {
        if let Ok(path) = std::env::var("KVCSD_MC_REPLAY") {
            if !path.is_empty() {
                match Trace::load(std::path::Path::new(&path)) {
                    Ok(t) if t.name == name => return explore::replay(cfg, f, &t),
                    // A trace for some other harness: this one explores
                    // normally (one env var, many checks per process).
                    Ok(_) => {}
                    Err(e) => panic!("kvcsd-mc: KVCSD_MC_REPLAY={path}: {e}"),
                }
            }
        }
        explore::run(name, cfg, f)
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = cfg;
        uncontrolled_run(name, f)
    }
}

/// Replay one recorded schedule of `f`, verifying each step against the
/// trace. Debug builds only; in release this degrades to a single
/// uncontrolled run (the scheduler does not exist there).
pub fn replay<F>(trace: &Trace, f: F) -> McReport
where
    F: Fn() + Send + Sync + 'static,
{
    #[cfg(debug_assertions)]
    {
        explore::replay(&McConfig::default(), Arc::new(f), trace)
    }
    #[cfg(not(debug_assertions))]
    {
        uncontrolled_run(&trace.name, Arc::new(f))
    }
}

/// The release-profile fallback: run the closure once on the OS
/// scheduler and report honestly that nothing was controlled.
#[cfg(not(debug_assertions))]
fn uncontrolled_run(name: &str, f: Arc<dyn Fn() + Send + Sync>) -> McReport {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
    let failure = result.err().map(|p| {
        let message = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        McFailure {
            kind: FailureKind::Panic,
            message,
            trace: Trace {
                name: name.to_string(),
                steps: Vec::new(),
            },
            trace_file: None,
        }
    });
    McReport {
        name: name.to_string(),
        schedules: 1,
        completed: false,
        controlled: false,
        failure,
    }
}
