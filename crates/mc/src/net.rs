//! Bounded-exhaustive exploration of bus-fault decision sequences.
//!
//! `tests/partition.rs` samples link faults from seeded probability
//! draws; this explorer replaces the draws with an explicit script
//! (`FaultInjector::set_bus_script`) and enumerates *every* script over
//! the fault alphabet up to a depth bound, running a deterministic
//! protocol scenario against each and checking its invariants. The
//! scenario reports how many link decisions it consumed, which prunes
//! the tree: extending a script at positions the run never read cannot
//! change its outcome, so only consumed positions branch.
//!
//! The canonical scenario is [`kvcsd_cluster::run_two_shard`] — the
//! distilled 2-shard replication/failover model whose invariants are the
//! PR-7 cluster guarantees (at most one primary acks per epoch, no
//! acked-write loss across failover, anti-entropy convergence after
//! heal). [`verify_two_shard`] wires it up.
//!
//! Unlike the thread-interleaving explorer this needs no controlled
//! scheduler (the scenario is single-threaded), so it works in release
//! builds too.

use kvcsd_sim::BusFault;

/// The decision a script position takes when nothing interesting
/// happens: one clean, immediate delivery. Trailing defaults are what
/// `decide_bus` returns past the script's end, so a script never needs
/// default-padded suffixes.
pub const NET_DEFAULT: BusFault = BusFault::Deliver {
    copies: 1,
    delay_ns: 0,
};

/// The non-default letters the explorer branches over at each consumed
/// position: drop, duplicate delivery, late delivery.
pub fn net_alphabet() -> [BusFault; 3] {
    [
        BusFault::Drop,
        BusFault::Deliver {
            copies: 2,
            delay_ns: 0,
        },
        BusFault::Late { copies: 1 },
    ]
}

/// A scenario run that violated an invariant, and the script that
/// provoked it.
#[derive(Debug, Clone)]
pub struct NetFailure {
    pub script: Vec<BusFault>,
    pub message: String,
}

/// Outcome of one [`explore_net`] sweep.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Scenario executions (distinct scripts actually run).
    pub runs: u64,
    /// The depth bound the sweep used.
    pub depth: usize,
    pub failure: Option<NetFailure>,
}

impl NetReport {
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "kvcsd-mc net: invariant violated after {} run(s) by script {:?}: {}",
                self.runs, f.script, f.message
            );
        }
    }
}

/// Run `scenario` against every fault script up to `depth` non-trailing
/// decisions. The scenario returns `Ok(decisions_consumed)` when its
/// invariants held, `Err(description)` otherwise; exploration stops at
/// the first violation.
pub fn explore_net<F>(depth: usize, scenario: F) -> NetReport
where
    F: Fn(&[BusFault]) -> Result<usize, String>,
{
    let mut report = NetReport {
        runs: 0,
        depth,
        failure: None,
    };
    let mut prefix = Vec::new();
    run_prefix(&mut prefix, depth, &scenario, &mut report);
    report
}

/// Returns false to stop the sweep (a failure was recorded).
fn run_prefix<F>(
    prefix: &mut Vec<BusFault>,
    depth: usize,
    scenario: &F,
    report: &mut NetReport,
) -> bool
where
    F: Fn(&[BusFault]) -> Result<usize, String>,
{
    match scenario(prefix) {
        Err(message) => {
            report.failure = Some(NetFailure {
                script: prefix.clone(),
                message,
            });
            false
        }
        Ok(consumed) => {
            report.runs += 1;
            extend(prefix, consumed, depth, scenario, report)
        }
    }
}

fn extend<F>(
    prefix: &mut Vec<BusFault>,
    consumed: usize,
    depth: usize,
    scenario: &F,
    report: &mut NetReport,
) -> bool
where
    F: Fn(&[BusFault]) -> Result<usize, String>,
{
    // Positions past what the parent run consumed were never read;
    // branching there reproduces the parent byte-for-byte.
    if prefix.len() >= depth || prefix.len() >= consumed {
        return true;
    }
    for f in net_alphabet() {
        prefix.push(f);
        let keep_going = run_prefix(prefix, depth, scenario, report);
        prefix.pop();
        if !keep_going {
            return false;
        }
    }
    // The default extension IS the parent run (past-the-end decisions
    // already default to a clean delivery): skip the redundant re-run
    // and push the branching frontier one position deeper.
    prefix.push(NET_DEFAULT);
    let keep_going = extend(prefix, consumed, depth, scenario, report);
    prefix.pop();
    keep_going
}

/// Enumerate every link-fault script up to `depth` against the 2-shard
/// replication/failover model, checking the cluster invariants on each.
pub fn verify_two_shard(depth: usize) -> NetReport {
    explore_net(depth, |script| {
        kvcsd_cluster::run_two_shard(script).map(|o| o.decisions_consumed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumed_count_prunes_unread_positions() {
        // A scenario that reads exactly one decision: the sweep is the
        // empty script plus one run per non-default letter at position
        // 0, regardless of depth.
        let report = explore_net(5, |script| {
            let _ = script.first();
            Ok(1)
        });
        assert!(report.failure.is_none());
        assert_eq!(report.runs, 1 + net_alphabet().len() as u64);
    }

    #[test]
    fn first_violating_script_is_reported() {
        let report = explore_net(3, |script| {
            if matches!(script.first(), Some(BusFault::Drop)) {
                Err("drop at position 0 breaks the toy invariant".to_string())
            } else {
                Ok(script.len().max(1))
            }
        });
        let failure = report.failure.expect("sweep must find the violation");
        assert!(matches!(failure.script[..], [BusFault::Drop]));
        assert!(failure.message.contains("position 0"));
    }

    #[test]
    fn depth_bounds_the_sweep_when_nothing_prunes() {
        // Scenario always consumes more decisions than the depth bound:
        // full branching at every position. The run count is exactly the
        // scripts of length <= depth with no trailing default (trailing
        // defaults collapse into their parent run): 1 empty + 3 of
        // length 1 + 4*3 of length 2 = 16.
        let report = explore_net(2, |_| Ok(3));
        assert!(report.failure.is_none());
        assert_eq!(report.runs, 16);
    }
}
