//! The checked harnesses: small closures over real product types whose
//! invariants the explorer verifies across **every** interleaving
//! (within the configured budgets), not just the ones a torture run
//! happens to sample.
//!
//! Each harness has a `*_body` function (the closure the explorer runs
//! once per schedule — also what a replay needs) and a report-returning
//! wrapper that names it. Bodies construct all state internally and
//! touch shared state only through the `kvcsd_sim::sync` shims, so every
//! cross-thread interaction is a scheduling point.

use std::sync::Arc;

use kvcsd_client::{InflightWindow, RetryPolicy};
use kvcsd_cluster::shard::HealthCell;
use kvcsd_cluster::ReplicaLog;
use kvcsd_core::{
    AdmissionConfig, AdmissionGate, ArtifactPayload, Decision, KeyspaceArtifacts, PressureSample,
};
use kvcsd_proto::{DeviceHandler, KvCommand, KvResponse, QueuePair};
use kvcsd_sim::sync::{spawn, Mutex, Shared};
use kvcsd_sim::{BusConfig, BusResource, IoLedger, VirtualClock};

use crate::{check, McConfig, McReport, Trace};

/// Three failover detectors race [`HealthCell::begin_failover`] — the
/// compare-and-swap every promotion decision gates on. Exactly one must
/// win under every interleaving; two winners would mean two promotions
/// for one dead primary.
pub fn health_promotion_body() {
    let cell = Arc::new(HealthCell::new());
    let detectors: Vec<_> = (0..3)
        .map(|_| {
            let cell = Arc::clone(&cell);
            spawn(move || cell.begin_failover())
        })
        .collect();
    let mut winners = 0;
    for d in detectors {
        if d.join().unwrap_or(false) {
            winners += 1;
        }
    }
    assert_eq!(
        winners, 1,
        "exactly one failover detector must win the CAS, got {winners}"
    );
}

pub fn health_promotion(cfg: &McConfig) -> McReport {
    check("health-promotion", cfg, health_promotion_body)
}

/// Two writers hit the [`AdmissionGate`] concurrently: one sample above
/// the high watermark (engages the stall band), one between the
/// watermarks (outcome depends on whether it observes the engaged
/// flag). Every interleaving must yield a decision legal for its band,
/// and the gate must end engaged — the mid sample can never release it.
pub fn admission_bands_body() {
    let gate = Arc::new(AdmissionGate::new(AdmissionConfig::default()));
    let high = PressureSample {
        dram_usage: 0.90,
        pending_jobs: 0,
        compaction_debt: 0,
    };
    let mid = PressureSample {
        dram_usage: 0.70,
        pending_jobs: 0,
        compaction_debt: 0,
    };
    let g = Arc::clone(&gate);
    let t_high = spawn(move || g.admit_write(&high));
    let g = Arc::clone(&gate);
    let t_mid = spawn(move || g.admit_write(&mid));
    let d_high = t_high.join().unwrap_or(Decision::Admit);
    let d_mid = t_mid.join().unwrap_or(Decision::Admit);
    assert!(
        matches!(d_high, Decision::Stall { .. }),
        "a sample above the high watermark must stall, got {d_high:?}"
    );
    assert!(
        matches!(d_mid, Decision::Slowdown { .. } | Decision::Stall { .. }),
        "a between-watermarks sample slows down (gate not yet engaged) or stalls \
         (observed the engaged flag), got {d_mid:?}"
    );
    assert!(
        gate.is_engaged(),
        "the stall band must stay engaged: only a below-low sample may release it"
    );
}

pub fn admission_bands(cfg: &McConfig) -> McReport {
    check("admission-bands", cfg, admission_bands_body)
}

fn artifacts(pairs: u64) -> KeyspaceArtifacts {
    KeyspaceArtifacts {
        name: "ks".to_string(),
        pairs,
        data_bytes: pairs * 16,
        min_key: Some(vec![0]),
        max_key: Some(vec![0xFF]),
        payload: ArtifactPayload::SealedLogs {
            klog: vec![0u8; 32],
            vlog: vec![0u8; 64],
        },
    }
}

/// Two primaries-of-the-moment ship the same keyspace concurrently over
/// a clean bus. Sequence numbers come from a shared counter and the
/// receiver applies highest-seq-wins, so across every interleaving the
/// two ships must land as exactly one acceptance plus one duplicate, or
/// two acceptances in seq order — never a lost or doubly-applied state.
pub fn replica_dedup_body() {
    let ledger = Arc::new(IoLedger::new(1, 4096));
    let bus = BusResource::new(BusConfig::default(), ledger);
    let log = Arc::new(ReplicaLog::new(0, bus, Arc::new(VirtualClock::new())));
    let a = Arc::clone(&log);
    let t1 = spawn(move || {
        let _ = a.ship("ks", artifacts(1), 1);
    });
    let b = Arc::clone(&log);
    let t2 = spawn(move || {
        let _ = b.ship("ks", artifacts(2), 1);
    });
    let _ = t1.join();
    let _ = t2.join();
    let accepted = log.accepted();
    let duplicates = log.duplicates();
    assert_eq!(
        accepted + duplicates,
        2,
        "both ships must be classified (accepted {accepted} + duplicates {duplicates})"
    );
    assert!(accepted >= 1, "at least the winning ship must apply");
    let latest = log.latest_per_keyspace();
    assert_eq!(latest.len(), 1, "one keyspace, one surviving artifact");
    assert_eq!(log.applied_epoch(), 1);
}

pub fn replica_dedup(cfg: &McConfig) -> McReport {
    check("replica-dedup", cfg, replica_dedup_body)
}

/// The seeded-racy fixture: two threads do a read-modify-write through
/// self-synchronized `Shared::get`/`set`, which is atomic per access but
/// not across the pair. The happens-before race detector stays quiet
/// (every access is synchronized); only schedule enumeration exposes the
/// lost update. The explorer must find the interleaving where both
/// threads read the same snapshot.
pub fn racy_increment_body() {
    let counter = Arc::new(Shared::new(0u32));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            spawn(move || {
                let v = counter.get();
                counter.set(v + 1);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    assert_eq!(
        counter.get(),
        2,
        "lost update: both increments read the same snapshot"
    );
}

pub fn racy_increment(cfg: &McConfig) -> McReport {
    check("racy-increment", cfg, racy_increment_body)
}

/// Replay a recorded `racy-increment` counterexample.
pub fn racy_increment_replay(trace: &Trace) -> McReport {
    crate::replay(trace, racy_increment_body)
}

/// Three threads, two locks: t1 and t2 contend on lock A while t3 works
/// alone on lock B. t3's steps commute with everything, so DPOR must
/// explore strictly fewer schedules than the naive DFS while reaching
/// the same verdict — the measurable reduction test.
pub fn three_locks_body() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let a1 = Arc::clone(&a);
    let t1 = spawn(move || *a1.lock() += 1);
    let a2 = Arc::clone(&a);
    let t2 = spawn(move || *a2.lock() += 1);
    let b3 = Arc::clone(&b);
    let t3 = spawn(move || *b3.lock() += 1);
    let _ = t1.join();
    let _ = t2.join();
    let _ = t3.join();
    assert_eq!(*a.lock(), 2);
    assert_eq!(*b.lock(), 1);
}

pub fn three_locks(cfg: &McConfig) -> McReport {
    check("three-locks", cfg, three_locks_body)
}

/// Echo device: a `Get` completes with its own key as the value, so a
/// completion routed to the wrong in-flight op is self-evident.
struct EchoDevice;

impl DeviceHandler for EchoDevice {
    fn handle(&self, cmd: KvCommand) -> KvResponse {
        match cmd {
            KvCommand::Get { key, .. } => KvResponse::Value(key),
            _ => KvResponse::PutOk,
        }
    }
}

/// Two threads share one [`InflightWindow`] and each submit + wait one
/// op with a distinct key. Under every interleaving, each thread must
/// claim exactly its own completion (a thread's `wait` may drain —
/// *pump* — the other's completion into the done map, never steal it),
/// and both threads must terminate: the submit/poll critical section
/// must be deadlock-free and the wait loop bounded.
pub fn window_matching_body() {
    let qp = QueuePair::new(Arc::new(EchoDevice), Arc::new(IoLedger::new(1, 4096)));
    let win = Arc::new(InflightWindow::new(qp, RetryPolicy::none(), None));
    let threads: Vec<_> = (0..2u8)
        .map(|i| {
            let win = Arc::clone(&win);
            spawn(move || {
                let key = vec![i];
                let op = win.submit(
                    None,
                    KvCommand::Get {
                        ks: 0,
                        key: key.clone(),
                    },
                );
                match win.wait(op) {
                    Ok(KvResponse::Value(v)) => {
                        assert_eq!(v, key, "completion matched to the wrong op")
                    }
                    other => panic!("wait: {other:?}"),
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    assert_eq!(win.inflight_len(), 0, "no orphaned ops after both claims");
}

pub fn window_matching(cfg: &McConfig) -> McReport {
    check("window-matching", cfg, window_matching_body)
}
