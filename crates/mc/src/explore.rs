//! The schedule-tree explorer: DFS over controlled executions with
//! dynamic partial-order reduction, preemption bounding and optional
//! state-hash pruning.
//!
//! Each iteration runs one [`Execution`]: replay the current stack's
//! chosen grants, then extend with fresh choice points until the harness
//! finishes, fails, or gets pruned. Backtracking pops the stack to the
//! deepest node with an unexplored branch and re-runs. The closure must
//! be deterministic under a fixed schedule — every run of the same grant
//! sequence must declare the same ops — which holds for shim-only
//! harnesses because the shims are the only nondeterminism source in
//! controlled mode.
//!
//! # DPOR
//!
//! The reduction is the classic backtrack-set + sleep-set scheme:
//!
//! * Two transitions are **dependent** iff they touch the same object
//!   and at least one access is exclusive. `start` and `join` commute
//!   with everything: their only effect is on their own thread (a
//!   child's exit *enabling* a pending `join` needs no reordering,
//!   because the join itself has no shared effect to order).
//! * At every fresh choice point, each thread's declared op is compared
//!   against executed steps bottom-up; the most recent dependent step by
//!   another thread gets that thread added to its node's **backtrack
//!   set** (or all its enabled threads, when the declaring thread was
//!   not enabled there). No happens-before filter is applied — that
//!   only adds redundant backtrack points, never loses any.
//! * A node's **sleep set** carries threads whose subtrees were already
//!   explored and whose pending op commutes with everything executed
//!   since; picking one would re-visit a permutation. A node where all
//!   enabled threads are asleep ends the execution as redundant (not a
//!   deadlock).
//!
//! With `dpor: false` every enabled thread goes in every backtrack set
//! and sleep sets stay empty — the naive full DFS the reduction is
//! measured against.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::Arc;

use kvcsd_sim::mc::{Access, Execution, OpKind, Pending, Step};

use crate::{FailureKind, McConfig, McFailure, McReport, Trace, TraceStep};

/// One explored choice point on the DFS stack.
struct Node {
    /// Every parked thread's declared op at this point (disabled ones
    /// included — they matter for DPOR insertion and deadlock reports).
    pending: Vec<Pending>,
    /// The branch currently being explored.
    chosen: u32,
    /// Threads queued for later branches (DPOR insertions land here).
    backtrack: BTreeSet<u32>,
    /// Branches already fully explored.
    done: BTreeSet<u32>,
    /// Sleep set at node creation.
    sleep: BTreeSet<u32>,
    /// The thread that was running when this point was reached.
    prev: Option<u32>,
    /// Preemptive switches on the path strictly above this node.
    preemptions: u32,
}

impl Node {
    fn pend(&self, tid: u32) -> Option<&Pending> {
        self.pending.iter().find(|p| p.tid == tid)
    }

    fn op(&self, tid: u32) -> Option<(OpKind, u64)> {
        self.pend(tid).map(|p| (p.kind, p.obj))
    }

    fn chosen_op(&self) -> (OpKind, u64) {
        self.op(self.chosen).unwrap_or((OpKind::Start, 0))
    }

    fn enabled(&self, tid: u32) -> bool {
        self.pend(tid).is_some_and(|p| p.enabled)
    }

    /// Preemption cost of granting `tid` here: 1 when it switches away
    /// from a previous thread whose next op is still enabled.
    fn cost(&self, tid: u32) -> u32 {
        match self.prev {
            Some(p) if p != tid && self.enabled(p) => 1,
            _ => 0,
        }
    }

    fn within_budget(&self, cfg: &McConfig, tid: u32) -> bool {
        cfg.preemption_bound
            .is_none_or(|b| self.preemptions + self.cost(tid) <= b)
    }
}

/// Same object, at least one exclusive access. `Start`/`Join` report no
/// access and commute with everything.
fn dependent(a: (OpKind, u64), b: (OpKind, u64)) -> bool {
    match (a.0.access(), b.0.access()) {
        (Some(x), Some(y)) => a.1 == b.1 && (x == Access::Exclusive || y == Access::Exclusive),
        _ => false,
    }
}

fn trace_of(name: &str, stack: &[Node]) -> Trace {
    Trace {
        name: name.to_string(),
        steps: stack
            .iter()
            .map(|n| {
                let (kind, obj) = n.chosen_op();
                TraceStep {
                    tid: n.chosen,
                    kind: kind.name().to_string(),
                    obj,
                }
            })
            .collect(),
    }
}

fn write_trace(cfg: &McConfig, trace: &Trace) -> Option<PathBuf> {
    let dir = cfg
        .trace_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/mc-failures"));
    let path = dir.join(format!("{}.mctrace", trace.name));
    match trace.save(&path) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Control-state surrogate for optional pruning: per-thread progress
/// counts plus every declared op. Blind to data values — see the
/// `hash_pruning` doc on `McConfig`.
fn state_hash(stack: &[Node], pending: &[Pending]) -> u64 {
    let mut counts: Vec<(u32, u32)> = Vec::new();
    for n in stack {
        match counts.iter_mut().find(|(t, _)| *t == n.chosen) {
            Some((_, c)) => *c += 1,
            None => counts.push((n.chosen, 1)),
        }
    }
    counts.sort_unstable();
    let mut h = DefaultHasher::new();
    counts.hash(&mut h);
    for p in pending {
        p.tid.hash(&mut h);
        p.kind.hash(&mut h);
        p.obj.hash(&mut h);
        p.enabled.hash(&mut h);
    }
    h.finish()
}

enum RunEnd {
    /// Finished cleanly, was sleep-blocked, or was hash-pruned.
    Ok,
    Failure(FailureKind, String),
}

pub(crate) fn run(name: &str, cfg: &McConfig, f: Arc<dyn Fn() + Send + Sync>) -> McReport {
    let mut stack: Vec<Node> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut schedules = 0u64;
    let mut completed = true;
    loop {
        if schedules >= cfg.max_schedules {
            completed = false;
            break;
        }
        let end = run_one(cfg, &f, &mut stack, &mut seen);
        schedules += 1;
        if let RunEnd::Failure(kind, message) = end {
            let trace = trace_of(name, &stack);
            let trace_file = write_trace(cfg, &trace);
            return McReport {
                name: name.to_string(),
                schedules,
                completed: false,
                controlled: true,
                failure: Some(McFailure {
                    kind,
                    message,
                    trace,
                    trace_file,
                }),
            };
        }
        if !advance(cfg, &mut stack) {
            break;
        }
    }
    McReport {
        name: name.to_string(),
        schedules,
        completed,
        controlled: true,
        failure: None,
    }
}

/// One controlled execution: replay the stack's grants, then extend.
/// On return the stack holds exactly the steps this execution took.
fn run_one(
    cfg: &McConfig,
    f: &Arc<dyn Fn() + Send + Sync>,
    stack: &mut Vec<Node>,
    seen: &mut HashSet<u64>,
) -> RunEnd {
    let mut exec = Execution::begin();
    {
        let f = Arc::clone(f);
        exec.start(move || f());
    }
    let mut depth = 0usize;
    loop {
        match exec.next() {
            Step::Done => {
                exec.finish();
                return RunEnd::Ok;
            }
            Step::Panicked => {
                let out = exec.finish();
                let message = out.panic.unwrap_or_else(|| {
                    format!("{} managed thread(s) panicked", out.panicked_threads)
                });
                stack.truncate(depth);
                return RunEnd::Failure(FailureKind::Panic, message);
            }
            Step::Choice(pending) => {
                if depth < stack.len() {
                    let tid = stack[depth].chosen;
                    exec.grant(tid);
                    depth += 1;
                    continue;
                }
                if depth >= cfg.max_steps {
                    drop(exec);
                    return RunEnd::Failure(
                        FailureKind::StepLimit,
                        format!(
                            "execution exceeded {} scheduling points — livelock, or a harness \
                             too large to enumerate (raise max_steps or shrink the harness)",
                            cfg.max_steps
                        ),
                    );
                }
                let enabled: Vec<u32> = pending
                    .iter()
                    .filter(|p| p.enabled)
                    .map(|p| p.tid)
                    .collect();
                if enabled.is_empty() {
                    let desc = pending
                        .iter()
                        .map(|p| format!("t{} blocked on {} obj {}", p.tid, p.kind.name(), p.obj))
                        .collect::<Vec<_>>()
                        .join("; ");
                    drop(exec);
                    return RunEnd::Failure(
                        FailureKind::Deadlock,
                        format!("modeled deadlock: {desc}"),
                    );
                }
                if cfg.hash_pruning && !seen.insert(state_hash(stack, &pending)) {
                    drop(exec);
                    return RunEnd::Ok;
                }

                let (prev, preemptions, sleep) = match stack.last() {
                    None => (None, 0, BTreeSet::new()),
                    Some(par) => {
                        let cop = par.chosen_op();
                        let sleep = if cfg.dpor {
                            par.sleep
                                .iter()
                                .chain(par.done.iter())
                                .copied()
                                .filter(|&u| u != par.chosen)
                                .filter(|&u| par.op(u).is_some_and(|op| !dependent(cop, op)))
                                .collect()
                        } else {
                            BTreeSet::new()
                        };
                        (
                            Some(par.chosen),
                            par.preemptions + par.cost(par.chosen),
                            sleep,
                        )
                    }
                };

                // DPOR backtrack insertion: each declared op revisits the
                // most recent dependent step by another thread.
                if cfg.dpor {
                    for p in &pending {
                        let pop = (p.kind, p.obj);
                        for i in (0..depth).rev() {
                            if stack[i].chosen == p.tid {
                                continue;
                            }
                            if !dependent(stack[i].chosen_op(), pop) {
                                continue;
                            }
                            if stack[i].enabled(p.tid) {
                                stack[i].backtrack.insert(p.tid);
                            } else {
                                let all: Vec<u32> = stack[i]
                                    .pending
                                    .iter()
                                    .filter(|q| q.enabled)
                                    .map(|q| q.tid)
                                    .collect();
                                stack[i].backtrack.extend(all);
                            }
                            break;
                        }
                    }
                }

                let mut node = Node {
                    pending,
                    chosen: 0,
                    backtrack: BTreeSet::new(),
                    done: BTreeSet::new(),
                    sleep,
                    prev,
                    preemptions,
                };
                // First branch: stick with the running thread when
                // possible (free under the preemption bound), else the
                // lowest awake enabled tid.
                let pick = prev
                    .filter(|&p| {
                        enabled.contains(&p)
                            && !node.sleep.contains(&p)
                            && node.within_budget(cfg, p)
                    })
                    .or_else(|| {
                        enabled
                            .iter()
                            .copied()
                            .find(|&t| !node.sleep.contains(&t) && node.within_budget(cfg, t))
                    });
                let Some(tid) = pick else {
                    // Every enabled thread is asleep (this interleaving
                    // commutes into an explored one) or over budget.
                    drop(exec);
                    return RunEnd::Ok;
                };
                node.chosen = tid;
                if cfg.dpor {
                    node.backtrack.insert(tid);
                } else {
                    node.backtrack.extend(enabled.iter().copied());
                }
                stack.push(node);
                exec.grant(tid);
                depth += 1;
            }
        }
    }
}

/// Pop to the deepest node with an unexplored branch and select it.
/// False = the whole tree is explored.
fn advance(cfg: &McConfig, stack: &mut Vec<Node>) -> bool {
    while let Some(mut top) = stack.pop() {
        top.done.insert(top.chosen);
        let next = top.backtrack.iter().copied().find(|&t| {
            !top.done.contains(&t)
                && !top.sleep.contains(&t)
                && top.enabled(t)
                && top.within_budget(cfg, t)
        });
        if let Some(t) = next {
            top.chosen = t;
            stack.push(top);
            return true;
        }
    }
    false
}

/// Replay one recorded schedule, verifying each grant against the trace
/// and finishing the tail (past the trace's end) deterministically.
pub(crate) fn replay(cfg: &McConfig, f: Arc<dyn Fn() + Send + Sync>, trace: &Trace) -> McReport {
    let name = trace.name.clone();
    let mut exec = Execution::begin();
    {
        let f = Arc::clone(&f);
        exec.start(move || f());
    }
    let mut executed: Vec<TraceStep> = Vec::new();
    let fail = |executed: Vec<TraceStep>, kind, message: String| McReport {
        name: trace.name.clone(),
        schedules: 1,
        completed: false,
        controlled: true,
        failure: Some(McFailure {
            kind,
            message,
            trace: Trace {
                name: trace.name.clone(),
                steps: executed,
            },
            trace_file: None,
        }),
    };
    loop {
        match exec.next() {
            Step::Done => {
                exec.finish();
                return McReport {
                    name,
                    schedules: 1,
                    completed: true,
                    controlled: true,
                    failure: None,
                };
            }
            Step::Panicked => {
                let out = exec.finish();
                let message = out.panic.unwrap_or_else(|| {
                    format!("{} managed thread(s) panicked", out.panicked_threads)
                });
                return fail(executed, FailureKind::Panic, message);
            }
            Step::Choice(pending) => {
                if executed.len() >= cfg.max_steps {
                    drop(exec);
                    return fail(
                        executed,
                        FailureKind::StepLimit,
                        format!("replay exceeded {} scheduling points", cfg.max_steps),
                    );
                }
                let at = executed.len();
                let tid = match trace.steps.get(at) {
                    Some(step) => {
                        let Some(p) = pending.iter().find(|p| p.tid == step.tid) else {
                            drop(exec);
                            return fail(
                                executed,
                                FailureKind::ReplayDivergence,
                                format!(
                                    "trace step {at} grants t{} but that thread is not parked",
                                    step.tid
                                ),
                            );
                        };
                        if p.kind.name() != step.kind || p.obj != step.obj || !p.enabled {
                            let got = format!("{} obj {}", p.kind.name(), p.obj);
                            let want = format!("{} obj {}", step.kind, step.obj);
                            let enabled = p.enabled;
                            drop(exec);
                            return fail(
                                executed,
                                FailureKind::ReplayDivergence,
                                format!(
                                    "trace step {at} expects t{} at {want}, found {got} \
                                     (enabled: {enabled})",
                                    step.tid
                                ),
                            );
                        }
                        step.tid
                    }
                    // Past the trace: any deterministic policy works,
                    // first-enabled keeps the tail canonical.
                    None => match pending.iter().find(|p| p.enabled) {
                        Some(p) => p.tid,
                        None => {
                            drop(exec);
                            return fail(
                                executed,
                                FailureKind::Deadlock,
                                "modeled deadlock in the replay tail".to_string(),
                            );
                        }
                    },
                };
                let (kind, obj) = pending
                    .iter()
                    .find(|p| p.tid == tid)
                    .map(|p| (p.kind.name().to_string(), p.obj))
                    .unwrap_or_else(|| ("start".to_string(), 0));
                executed.push(TraceStep { tid, kind, obj });
                exec.grant(tid);
            }
        }
    }
}
