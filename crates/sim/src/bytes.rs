//! Little-endian byte decoding helpers.
//!
//! On-flash formats throughout the workspace decode fixed-width integers
//! out of page buffers. Before this module existed every such site spelled
//! `u32::from_le_bytes(buf[a..b].try_into().unwrap())` — dozens of
//! `unwrap()`s that the `kvcsd-check` lint would have to allowlist one by
//! one. These helpers are the single sanctioned funnel: `le_*` for buffers
//! whose length was already validated (an out-of-bounds offset is an
//! internal invariant violation and panics via slice indexing, with no
//! `unwrap` in sight), `try_le_*` for tail-parsing paths that want to turn
//! a short buffer into a typed corruption error.

/// Decode a `u16` at `off`; panics if `buf` is too short (caller-validated
/// buffers only).
#[inline]
pub fn le_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Decode a `u32` at `off`; panics if `buf` is too short (caller-validated
/// buffers only).
#[inline]
pub fn le_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Decode a `u64` at `off`; panics if `buf` is too short (caller-validated
/// buffers only).
#[inline]
pub fn le_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Decode a `u16` at `off`, or `None` if the buffer is too short.
#[inline]
pub fn try_le_u16(buf: &[u8], off: usize) -> Option<u16> {
    Some(u16::from_le_bytes([*buf.get(off)?, *buf.get(off + 1)?]))
}

/// Decode a `u32` at `off`, or `None` if the buffer is too short.
#[inline]
pub fn try_le_u32(buf: &[u8], off: usize) -> Option<u32> {
    let s = buf.get(off..off + 4)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Decode a `u64` at `off`, or `None` if the buffer is too short.
#[inline]
pub fn try_le_u64(buf: &[u8], off: usize) -> Option<u64> {
    let s = buf.get(off..off + 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Some(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_at_offsets() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xBEEFu16.to_le_bytes());
        buf.extend_from_slice(&0xDEADBEEFu32.to_le_bytes());
        buf.extend_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        assert_eq!(le_u16(&buf, 0), 0xBEEF);
        assert_eq!(le_u32(&buf, 2), 0xDEADBEEF);
        assert_eq!(le_u64(&buf, 6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn try_variants_reject_short_buffers() {
        let buf = [1u8, 2, 3];
        assert_eq!(try_le_u16(&buf, 1), Some(u16::from_le_bytes([2, 3])));
        assert_eq!(try_le_u16(&buf, 2), None);
        assert_eq!(try_le_u32(&buf, 0), None);
        assert_eq!(try_le_u64(&buf, 0), None);
        assert_eq!(try_le_u32(&[9u8; 4], 0), Some(u32::from_le_bytes([9; 4])));
    }

    #[test]
    #[should_panic]
    fn unchecked_panics_on_short_buffer() {
        le_u32(&[1u8, 2], 0);
    }
}
