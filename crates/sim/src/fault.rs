//! Deterministic fault injection for the simulated flash stack.
//!
//! A [`FaultPlan`] describes *what* can go wrong — per-op-class error
//! probabilities, a scheduled power cut at the N-th flash operation (or at
//! every k-th), whether injected errors are transient or persistent, and
//! whether a power cut mid-program leaves a torn page. A [`FaultInjector`]
//! executes the plan: every NAND read/program/erase and every ZNS append
//! consults it, and the injector's decisions are a pure function of the
//! plan's seed and the operation sequence — the same seed over the same
//! workload reproduces the identical failure schedule, which is what makes
//! crash-recovery failures debuggable instead of flaky.
//!
//! The injector deliberately lives in `kvcsd-sim`, below every store: the
//! flash layer threads it through, the device layer only ever *observes*
//! typed errors, and tests own the schedule.

use crate::rng::XorShift64;
use crate::sync::Mutex;

/// Class of a flash-stack operation, as seen by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    NandRead,
    NandProgram,
    NandErase,
    ZnsAppend,
    /// One cluster-bus message attempt (link lane; never consults the
    /// device-op stream).
    BusXmit,
}

impl OpClass {
    pub fn name(self) -> &'static str {
        match self {
            OpClass::NandRead => "nand-read",
            OpClass::NandProgram => "nand-program",
            OpClass::NandErase => "nand-erase",
            OpClass::ZnsAppend => "zns-append",
            OpClass::BusXmit => "bus-xmit",
        }
    }
}

/// What the injector decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Ok,
    /// Fail with a transient error: the operation did not happen and an
    /// identical retry may succeed.
    Transient,
    /// Fail with a persistent error: retrying is pointless.
    Persistent,
    /// Power is cut *at* this operation. For a program op,
    /// `torn_prefix_bytes` is `Some(n)` when the page was torn mid-write:
    /// the first `n` bytes of the payload became durable, the rest did not
    /// (the page still counts as programmed). `None` means the operation
    /// was cleanly lost.
    PowerCut { torn_prefix_bytes: Option<usize> },
    /// Power is already off; every operation fails until
    /// [`FaultInjector::power_restore`].
    PoweredOff,
}

/// One injected event, for reproducibility auditing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 1-based index of the flash operation the event fired on.
    pub op: u64,
    pub class: OpClass,
    pub kind: FaultKind,
}

/// Kind of an injected event (the non-`Ok` decisions, minus `PoweredOff`
/// which is a consequence, not an event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Transient,
    Persistent,
    PowerCut,
    /// Bus message lost on the wire (link lane).
    LinkDrop,
    /// Bus message delivered twice (link lane).
    LinkDuplicate,
    /// Bus message delivered after the sender's ack timeout — the
    /// reorder/late-delivery fault (link lane).
    LinkLate,
    /// The link entered a bidirectional partition.
    LinkPartition,
    /// The partition healed.
    LinkHeal,
}

/// What the link lane decided for one bus message attempt. The sender
/// (see `BusResource::xmit`) turns this into charged transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// Delivered and acked. `copies` > 1 models network duplication (the
    /// receiver sees every copy); `delay_ns` is extra in-flight latency,
    /// still inside the sender's ack timeout.
    Deliver { copies: u32, delay_ns: u64 },
    /// Delivered (all `copies`), but the ack misses the sender's timeout
    /// window: the receiver has the message, the sender will retransmit.
    /// This is how reordering manifests under a stop-and-wait protocol —
    /// the retransmit races the late original.
    Late { copies: u32 },
    /// Lost on the wire; the sender times out and retries.
    Drop,
    /// The link is partitioned: nothing leaves the NIC.
    Partitioned,
}

/// Declarative description of the faults to inject.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw the injector makes.
    pub seed: u64,
    /// Device this plan's injector is attached to. One declarative plan
    /// can be shared across an N-device fleet: each device builds its
    /// injector from `plan.for_device(id)`, which keys the random stream
    /// (and the stagger of scheduled cuts) off `(seed, device_id)` so
    /// per-shard failure schedules are deterministic and *distinct* —
    /// rather than every device tearing the same page at the same op.
    /// Device 0 reproduces the historical single-device stream exactly.
    pub device_id: u32,
    /// Per-op probability of an injected error, by class.
    pub read_error_prob: f64,
    pub program_error_prob: f64,
    pub erase_error_prob: f64,
    pub append_error_prob: f64,
    /// Fraction of injected errors that are persistent (the rest are
    /// transient). 0.0 = all transient, 1.0 = all persistent.
    pub persistent_fraction: f64,
    /// Cut power at this absolute (1-based) flash-operation index.
    pub power_cut_at: Option<u64>,
    /// After each restore, cut power again every `k` further operations.
    pub power_cut_every: Option<u64>,
    /// Whether a power cut landing on a program leaves a torn page
    /// (a durable prefix of the payload) instead of cleanly losing the op.
    pub torn_writes: bool,
    /// Link this plan's injector drives bus faults for. Keyed the same
    /// way as `device_id` (see [`FaultPlan::for_link`]) but onto an
    /// *independent* RNG lane: link draws never perturb the device-op
    /// stream, so the same device seed yields a byte-identical device
    /// fault schedule with and without link faults.
    pub link_id: u32,
    /// Per-message probability the bus loses the message outright.
    pub link_drop_prob: f64,
    /// Per-message probability the bus delivers the message twice.
    pub link_dup_prob: f64,
    /// Per-message probability the message arrives after the sender's
    /// ack timeout (the reorder fault: the retransmit races it).
    pub link_reorder_prob: f64,
    /// Per-message probability of extra in-flight latency (still acked).
    pub link_delay_prob: f64,
    /// The extra latency charged when the delay fault fires.
    pub link_delay_ns: u64,
    /// Partition the link bidirectionally at this absolute (1-based) bus
    /// message attempt.
    pub partition_at: Option<u64>,
    /// Heal a scheduled partition after this many further message
    /// attempts; `None` leaves it down until [`FaultInjector::heal_link_now`].
    pub partition_heal_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the injector becomes a pure op counter).
    pub fn none() -> Self {
        Self {
            seed: 1,
            device_id: 0,
            read_error_prob: 0.0,
            program_error_prob: 0.0,
            erase_error_prob: 0.0,
            append_error_prob: 0.0,
            persistent_fraction: 0.0,
            power_cut_at: None,
            power_cut_every: None,
            torn_writes: false,
            link_id: 0,
            link_drop_prob: 0.0,
            link_dup_prob: 0.0,
            link_reorder_prob: 0.0,
            link_delay_prob: 0.0,
            link_delay_ns: 0,
            partition_at: None,
            partition_heal_after: None,
        }
    }

    /// A plan that cuts power at the `n`-th flash operation (torn writes
    /// enabled — the harsher, more realistic crash model).
    pub fn power_cut_at(n: u64, seed: u64) -> Self {
        Self {
            seed,
            power_cut_at: Some(n),
            torn_writes: true,
            ..Self::none()
        }
    }

    /// A plan that cuts power at every `k`-th flash operation, resuming
    /// the count after each [`FaultInjector::power_restore`].
    pub fn power_cut_every(k: u64, seed: u64) -> Self {
        Self {
            seed,
            power_cut_every: Some(k),
            torn_writes: true,
            ..Self::none()
        }
    }

    /// Set one uniform error probability across all op classes.
    pub fn with_error_prob(mut self, p: f64) -> Self {
        self.read_error_prob = p;
        self.program_error_prob = p;
        self.erase_error_prob = p;
        self.append_error_prob = p;
        self
    }

    pub fn with_persistent_fraction(mut self, f: f64) -> Self {
        self.persistent_fraction = f;
        self
    }

    /// Set the per-message link fault probabilities in one call.
    pub fn with_link_faults(mut self, drop: f64, dup: f64, reorder: f64, delay: f64) -> Self {
        self.link_drop_prob = drop;
        self.link_dup_prob = dup;
        self.link_reorder_prob = reorder;
        self.link_delay_prob = delay;
        self
    }

    /// Extra latency charged when the delay fault fires.
    pub fn with_link_delay_ns(mut self, ns: u64) -> Self {
        self.link_delay_ns = ns;
        self
    }

    /// Partition the link at the `at`-th bus message attempt, healing
    /// after `heal_after` further attempts (`None` = until healed by hand).
    pub fn with_partition_at(mut self, at: u64, heal_after: Option<u64>) -> Self {
        self.partition_at = Some(at);
        self.partition_heal_after = heal_after;
        self
    }

    /// Key this plan to one device of a fleet. The same `(plan, id)` pair
    /// always yields the same schedule; different ids yield decorrelated
    /// streams from the one shared seed.
    pub fn for_device(mut self, id: u32) -> Self {
        self.device_id = id;
        self
    }

    /// Key this plan to one cluster link, the same re-keying discipline
    /// as [`FaultPlan::for_device`]: one declarative plan shared across a
    /// fleet yields deterministic, *distinct* per-link fault schedules.
    pub fn for_link(mut self, id: u32) -> Self {
        self.link_id = id;
        self
    }

    /// The seed actually driving this plan's RNG: `seed` for device 0
    /// (bit-compatible with single-device plans), a splitmix64-style
    /// mix of `(seed, device_id)` otherwise.
    pub fn effective_seed(&self) -> u64 {
        if self.device_id == 0 {
            return self.seed;
        }
        let mut z = self
            .seed
            .wrapping_add((self.device_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        // XorShift64 requires a non-zero seed.
        (z ^ (z >> 31)) | 1
    }

    /// The seed driving the *link* lane. Salted so it never collides with
    /// any device lane (including device 0's raw seed), and mixed for
    /// every link id — link 0 included — so link draws are decorrelated
    /// from device draws even when both ids are 0.
    pub fn link_effective_seed(&self) -> u64 {
        let mut z = (self.seed ^ 0xA5A5_5A5A_C3C3_3C3C)
            .wrapping_add((self.link_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        // XorShift64 requires a non-zero seed.
        (z ^ (z >> 31)) | 1
    }

    fn error_prob(&self, class: OpClass) -> f64 {
        match class {
            OpClass::NandRead => self.read_error_prob,
            OpClass::NandProgram => self.program_error_prob,
            OpClass::NandErase => self.erase_error_prob,
            OpClass::ZnsAppend => self.append_error_prob,
            // Bus faults are decided by the link lane, never by `decide`.
            OpClass::BusXmit => 0.0,
        }
    }
}

#[derive(Debug)]
struct InjectorState {
    rng: XorShift64,
    /// Flash operations observed so far (NAND reads/programs/erases; ZNS
    /// appends are compound and do not advance the counter themselves).
    ops: u64,
    /// Next absolute op index at which power is cut, if any.
    next_cut: Option<u64>,
    powered_off: bool,
    log: Vec<FaultEvent>,
    /// The link lane: its own RNG, message counter, partition state and
    /// event log, fully independent of the device-op stream above.
    link_rng: XorShift64,
    bus_ops: u64,
    partitioned: bool,
    /// Absolute bus-op index at which a scheduled partition heals.
    partition_heal_at: Option<u64>,
    link_log: Vec<FaultEvent>,
    /// Scripted link-lane decisions (kvcsd-mc's network explorer):
    /// consumed in order, bypassing the RNG and partition windows; past
    /// the end every attempt is a clean single delivery.
    script: Option<Vec<BusFault>>,
    script_pos: usize,
}

/// Executes a [`FaultPlan`]; shared (via `Arc`) by the whole flash stack.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let next_cut = plan.power_cut_at.or(plan.power_cut_every);
        let state = InjectorState {
            rng: XorShift64::new(plan.effective_seed()),
            ops: 0,
            next_cut,
            powered_off: false,
            log: Vec::new(),
            link_rng: XorShift64::new(plan.link_effective_seed()),
            bus_ops: 0,
            partitioned: false,
            partition_heal_at: None,
            link_log: Vec::new(),
            script: None,
            script_pos: 0,
        };
        Self {
            plan,
            state: Mutex::new(state),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consult the injector for one operation. `payload_len` is the byte
    /// length a program/append would make durable (used to size torn
    /// prefixes); pass 0 for reads and erases.
    pub fn decide(&self, class: OpClass, payload_len: usize) -> FaultDecision {
        let mut st = self.state.lock();
        if st.powered_off {
            return FaultDecision::PoweredOff;
        }
        // ZNS appends decompose into NAND programs, which advance the
        // counter; the append-level hook only draws for its own error
        // probability so cuts are not double counted.
        if class != OpClass::ZnsAppend {
            st.ops += 1;
            if Some(st.ops) == st.next_cut {
                st.powered_off = true;
                let torn =
                    if self.plan.torn_writes && class == OpClass::NandProgram && payload_len > 0 {
                        // A strict prefix: at least 0, at most len-1 bytes land.
                        Some(st.rng.next_below(payload_len as u64) as usize)
                    } else {
                        None
                    };
                let op = st.ops;
                st.log.push(FaultEvent {
                    op,
                    class,
                    kind: FaultKind::PowerCut,
                });
                return FaultDecision::PowerCut {
                    torn_prefix_bytes: torn,
                };
            }
        }
        let p = self.plan.error_prob(class);
        if p > 0.0 && st.rng.next_f64() < p {
            let persistent = self.plan.persistent_fraction > 0.0
                && st.rng.next_f64() < self.plan.persistent_fraction;
            let (op, kind) = (
                st.ops,
                if persistent {
                    FaultKind::Persistent
                } else {
                    FaultKind::Transient
                },
            );
            st.log.push(FaultEvent { op, class, kind });
            return if persistent {
                FaultDecision::Persistent
            } else {
                FaultDecision::Transient
            };
        }
        FaultDecision::Ok
    }

    /// Cut power immediately: every subsequent operation fails with
    /// [`FaultDecision::PoweredOff`] until [`FaultInjector::power_restore`].
    /// Lets a torture harness kill a device at an externally-chosen point
    /// instead of an op-count; the cut is recorded like any planned one.
    pub fn power_off_now(&self) {
        let mut st = self.state.lock();
        if !st.powered_off {
            st.powered_off = true;
            let op = st.ops;
            st.log.push(FaultEvent {
                op,
                class: OpClass::NandProgram,
                kind: FaultKind::PowerCut,
            });
        }
    }

    /// Restore power after a cut; schedules the next periodic cut if the
    /// plan has one.
    pub fn power_restore(&self) {
        let mut st = self.state.lock();
        st.powered_off = false;
        st.next_cut = match (self.plan.power_cut_every, st.next_cut) {
            (Some(k), _) => Some(st.ops + k),
            (None, Some(n)) if n > st.ops => Some(n),
            _ => None,
        };
    }

    /// True while the simulated device is without power.
    pub fn is_powered_off(&self) -> bool {
        self.state.lock().powered_off
    }

    /// Flash operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Every non-`Ok` decision made so far, in order — the failure
    /// schedule. Equal plans over equal workloads produce equal logs.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.lock().log.clone()
    }

    /// Consult the link lane for one bus message attempt. Draws come from
    /// the link RNG only: interleaving `decide_bus` calls with `decide`
    /// calls never changes the device fault schedule, and vice versa.
    pub fn decide_bus(&self) -> BusFault {
        let mut st = self.state.lock();
        st.bus_ops += 1;
        let op = st.bus_ops;
        // A script owns the link lane outright: decisions come from it in
        // order (clean single delivery past the end), and neither the RNG
        // nor partition windows are consulted — exhaustive enumeration
        // must not share fate with probabilistic draws.
        if st.script.is_some() {
            let pos = st.script_pos;
            st.script_pos += 1;
            let fault = st
                .script
                .as_ref()
                .and_then(|s| s.get(pos))
                .copied()
                .unwrap_or(BusFault::Deliver {
                    copies: 1,
                    delay_ns: 0,
                });
            let kind = match fault {
                BusFault::Drop => Some(FaultKind::LinkDrop),
                BusFault::Late { .. } => Some(FaultKind::LinkLate),
                BusFault::Deliver { copies, .. } if copies > 1 => Some(FaultKind::LinkDuplicate),
                BusFault::Deliver { .. } => None,
                BusFault::Partitioned => Some(FaultKind::LinkPartition),
            };
            if let Some(kind) = kind {
                st.link_log.push(FaultEvent {
                    op,
                    class: OpClass::BusXmit,
                    kind,
                });
            }
            return fault;
        }
        // Scheduled partition window: open at `partition_at`, heal after
        // `partition_heal_after` further attempts. Attempts against a
        // downed link still advance the counter so the heal can fire.
        if st.partitioned {
            if let Some(h) = st.partition_heal_at {
                if op >= h {
                    st.partitioned = false;
                    st.partition_heal_at = None;
                    st.link_log.push(FaultEvent {
                        op,
                        class: OpClass::BusXmit,
                        kind: FaultKind::LinkHeal,
                    });
                }
            }
        } else if self.plan.partition_at == Some(op) {
            st.partitioned = true;
            st.partition_heal_at = self.plan.partition_heal_after.map(|k| op + k);
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkPartition,
            });
        }
        if st.partitioned {
            return BusFault::Partitioned;
        }
        let p = &self.plan;
        if p.link_drop_prob > 0.0 && st.link_rng.next_f64() < p.link_drop_prob {
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkDrop,
            });
            return BusFault::Drop;
        }
        let copies = if p.link_dup_prob > 0.0 && st.link_rng.next_f64() < p.link_dup_prob {
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkDuplicate,
            });
            2
        } else {
            1
        };
        if p.link_reorder_prob > 0.0 && st.link_rng.next_f64() < p.link_reorder_prob {
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkLate,
            });
            return BusFault::Late { copies };
        }
        let delay_ns = if p.link_delay_prob > 0.0 && st.link_rng.next_f64() < p.link_delay_prob {
            p.link_delay_ns
        } else {
            0
        };
        BusFault::Deliver { copies, delay_ns }
    }

    /// Replace the link lane's probabilistic draws with an explicit
    /// decision script (the kvcsd-mc network explorer's hook). The next
    /// `decide_bus` consumes the script from its start; attempts past the
    /// end are clean single deliveries, so a finite script fully
    /// determines an unbounded protocol run.
    pub fn set_bus_script(&self, script: Vec<BusFault>) {
        let mut st = self.state.lock();
        st.script = Some(script);
        st.script_pos = 0;
    }

    /// Drop the decision script and return the link lane to its plan's
    /// probabilistic behavior (the "network heals" hook: subsequent
    /// attempts deliver per the plan, which for `FaultPlan::none` means
    /// perfectly).
    pub fn clear_bus_script(&self) {
        let mut st = self.state.lock();
        st.script = None;
        st.script_pos = 0;
    }

    /// How many link decisions the current script has served (including
    /// past-the-end defaults). Explorers use this to prune: extending a
    /// script beyond what a scenario consumed cannot change its outcome.
    pub fn bus_script_consumed(&self) -> usize {
        self.state.lock().script_pos
    }

    /// Partition the link immediately (torture hook); recorded like a
    /// scheduled partition. Stays down until [`FaultInjector::heal_link_now`].
    pub fn partition_now(&self) {
        let mut st = self.state.lock();
        if !st.partitioned {
            st.partitioned = true;
            st.partition_heal_at = None;
            let op = st.bus_ops;
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkPartition,
            });
        }
    }

    /// Heal a partition (manual or scheduled) immediately.
    pub fn heal_link_now(&self) {
        let mut st = self.state.lock();
        if st.partitioned {
            st.partitioned = false;
            st.partition_heal_at = None;
            let op = st.bus_ops;
            st.link_log.push(FaultEvent {
                op,
                class: OpClass::BusXmit,
                kind: FaultKind::LinkHeal,
            });
        }
    }

    /// True while the link is inside a partition window.
    pub fn is_partitioned(&self) -> bool {
        self.state.lock().partitioned
    }

    /// Bus message attempts observed so far.
    pub fn bus_ops(&self) -> u64 {
        self.state.lock().bus_ops
    }

    /// Every link-lane fault fired so far, in order — kept separate from
    /// [`FaultInjector::events`] so device schedules compare clean even
    /// when link faults are live.
    pub fn link_events(&self) -> Vec<FaultEvent> {
        self.state.lock().link_log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..1000 {
            assert_eq!(inj.decide(OpClass::NandProgram, 4096), FaultDecision::Ok);
        }
        assert_eq!(inj.ops(), 1000);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn power_cut_fires_exactly_at_n() {
        let inj = FaultInjector::new(FaultPlan::power_cut_at(5, 42));
        for _ in 0..4 {
            assert_eq!(inj.decide(OpClass::NandRead, 0), FaultDecision::Ok);
        }
        match inj.decide(OpClass::NandProgram, 4096) {
            FaultDecision::PowerCut {
                torn_prefix_bytes: Some(n),
            } => assert!(n < 4096),
            d => panic!("expected torn power cut, got {d:?}"),
        }
        // Everything fails until power returns.
        assert_eq!(inj.decide(OpClass::NandRead, 0), FaultDecision::PoweredOff);
        assert_eq!(
            inj.decide(OpClass::ZnsAppend, 100),
            FaultDecision::PoweredOff
        );
        assert!(inj.is_powered_off());
        inj.power_restore();
        assert_eq!(inj.decide(OpClass::NandRead, 0), FaultDecision::Ok);
    }

    #[test]
    fn periodic_cuts_resume_after_restore() {
        let inj = FaultInjector::new(FaultPlan::power_cut_every(3, 7));
        let mut cuts = Vec::new();
        for _ in 0..4 {
            loop {
                match inj.decide(OpClass::NandProgram, 64) {
                    FaultDecision::PowerCut { .. } => {
                        cuts.push(inj.ops());
                        inj.power_restore();
                        break;
                    }
                    FaultDecision::Ok => {}
                    d => panic!("{d:?}"),
                }
            }
        }
        assert_eq!(cuts, vec![3, 6, 9, 12]);
    }

    #[test]
    fn cut_on_read_is_clean_not_torn() {
        let inj = FaultInjector::new(FaultPlan::power_cut_at(1, 9));
        assert_eq!(
            inj.decide(OpClass::NandRead, 0),
            FaultDecision::PowerCut {
                torn_prefix_bytes: None
            }
        );
    }

    #[test]
    fn error_probabilities_are_deterministic_and_classful() {
        let plan = FaultPlan {
            seed: 99,
            ..FaultPlan::none()
        }
        .with_error_prob(0.3)
        .with_persistent_fraction(0.5);
        let run = |plan: FaultPlan| {
            let inj = FaultInjector::new(plan);
            let mut out = Vec::new();
            for i in 0..500u32 {
                let class = match i % 3 {
                    0 => OpClass::NandRead,
                    1 => OpClass::NandProgram,
                    _ => OpClass::NandErase,
                };
                out.push(inj.decide(class, 128));
            }
            (out, inj.events())
        };
        let (a, ea) = run(plan.clone());
        let (b, eb) = run(plan);
        assert_eq!(a, b, "same seed must reproduce the identical schedule");
        assert_eq!(ea, eb);
        assert!(a.contains(&FaultDecision::Transient));
        assert!(a.contains(&FaultDecision::Persistent));
        assert!(a.contains(&FaultDecision::Ok));
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let inj = FaultInjector::new(
                FaultPlan {
                    seed,
                    ..FaultPlan::none()
                }
                .with_error_prob(0.2),
            );
            (0..200)
                .map(|_| inj.decide(OpClass::NandProgram, 64))
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn device_zero_preserves_the_single_device_stream() {
        let plan = FaultPlan {
            seed: 42,
            ..FaultPlan::none()
        }
        .with_error_prob(0.25);
        assert_eq!(plan.clone().for_device(0), plan);
        assert_eq!(plan.effective_seed(), plan.seed);
    }

    #[test]
    fn one_shared_plan_keys_distinct_deterministic_streams_per_device() {
        let plan = FaultPlan {
            seed: 7,
            ..FaultPlan::none()
        }
        .with_error_prob(0.2)
        .with_persistent_fraction(0.3);
        let run = |id: u32| {
            let inj = FaultInjector::new(plan.clone().for_device(id));
            (0..300)
                .map(|_| inj.decide(OpClass::NandProgram, 128))
                .collect::<Vec<_>>()
        };
        // Same (plan, id) reproduces the identical schedule...
        assert_eq!(run(1), run(1));
        assert_eq!(run(3), run(3));
        // ...and distinct ids draw decorrelated streams from one seed.
        assert_ne!(run(0), run(1));
        assert_ne!(run(1), run(2));
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn scheduled_cuts_stay_per_device_exact_with_distinct_torn_prefixes() {
        // Each device owns its injector: the cut lands on each device's
        // *own* N-th op regardless of fleet interleaving, while the torn
        // prefix (an RNG draw) differs per device.
        let plan = FaultPlan::power_cut_at(3, 11);
        let torn = |id: u32| {
            let inj = FaultInjector::new(plan.clone().for_device(id));
            inj.decide(OpClass::NandRead, 0);
            inj.decide(OpClass::NandRead, 0);
            match inj.decide(OpClass::NandProgram, 4096) {
                FaultDecision::PowerCut {
                    torn_prefix_bytes: Some(n),
                } => n,
                d => panic!("device {id}: expected torn cut, got {d:?}"),
            }
        };
        assert_eq!(torn(1), torn(1), "same device id must reproduce");
        assert_ne!(
            torn(1),
            torn(2),
            "distinct devices must not tear identically"
        );
    }

    #[test]
    fn link_lane_never_perturbs_the_device_schedule() {
        // Same device seed => byte-identical device fault schedule with
        // and without link faults, and regardless of interleaved bus
        // draws. This is the composition contract the cluster relies on.
        let quiet = FaultPlan {
            seed: 123,
            ..FaultPlan::none()
        }
        .with_error_prob(0.3)
        .with_persistent_fraction(0.4);
        let noisy = quiet.clone().with_link_faults(0.3, 0.3, 0.3, 0.3);
        let run = |plan: FaultPlan, interleave: bool| {
            let inj = FaultInjector::new(plan);
            let mut out = Vec::new();
            for i in 0..400u32 {
                if interleave && i % 3 == 0 {
                    let _ = inj.decide_bus();
                }
                out.push(inj.decide(OpClass::NandProgram, 256));
            }
            (out, inj.events())
        };
        let (base, base_ev) = run(quiet.clone(), false);
        assert_eq!(run(quiet, true), (base.clone(), base_ev.clone()));
        assert_eq!(run(noisy.clone(), false), (base.clone(), base_ev.clone()));
        assert_eq!(run(noisy, true), (base, base_ev));
    }

    #[test]
    fn link_faults_are_deterministic_and_keyed_per_link() {
        let plan = FaultPlan {
            seed: 9,
            ..FaultPlan::none()
        }
        .with_link_faults(0.2, 0.2, 0.2, 0.2)
        .with_link_delay_ns(500);
        let run = |id: u32| {
            let inj = FaultInjector::new(plan.clone().for_link(id));
            let faults: Vec<BusFault> = (0..300).map(|_| inj.decide_bus()).collect();
            (faults, inj.link_events())
        };
        assert_eq!(run(0), run(0));
        assert_eq!(run(2), run(2));
        assert_ne!(run(0).0, run(1).0);
        assert_ne!(run(1).0, run(2).0);
        // The lane actually produces the full fault vocabulary.
        let (faults, _) = run(0);
        assert!(faults.contains(&BusFault::Drop));
        assert!(faults.iter().any(|f| matches!(f, BusFault::Late { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, BusFault::Deliver { copies: 2, .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, BusFault::Deliver { delay_ns: 500, .. })));
    }

    #[test]
    fn scheduled_partition_opens_and_heals_at_exact_attempts() {
        let plan = FaultPlan {
            seed: 4,
            ..FaultPlan::none()
        }
        .with_partition_at(3, Some(4));
        let inj = FaultInjector::new(plan);
        let deliver = BusFault::Deliver {
            copies: 1,
            delay_ns: 0,
        };
        assert_eq!(inj.decide_bus(), deliver); // 1
        assert_eq!(inj.decide_bus(), deliver); // 2
        assert_eq!(inj.decide_bus(), BusFault::Partitioned); // 3: opens
        assert!(inj.is_partitioned());
        assert_eq!(inj.decide_bus(), BusFault::Partitioned); // 4
        assert_eq!(inj.decide_bus(), BusFault::Partitioned); // 5
        assert_eq!(inj.decide_bus(), BusFault::Partitioned); // 6
        assert_eq!(inj.decide_bus(), deliver); // 7: healed at 3+4
        assert!(!inj.is_partitioned());
        let kinds: Vec<FaultKind> = inj.link_events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![FaultKind::LinkPartition, FaultKind::LinkHeal]);
    }

    #[test]
    fn manual_partition_and_heal_hooks_round_trip() {
        let inj = FaultInjector::new(FaultPlan::none());
        inj.partition_now();
        assert_eq!(inj.decide_bus(), BusFault::Partitioned);
        inj.heal_link_now();
        assert_eq!(
            inj.decide_bus(),
            BusFault::Deliver {
                copies: 1,
                delay_ns: 0
            }
        );
        assert_eq!(inj.bus_ops(), 2);
    }

    #[test]
    fn zns_append_does_not_advance_cut_counter() {
        let inj = FaultInjector::new(FaultPlan::power_cut_at(2, 5));
        assert_eq!(inj.decide(OpClass::ZnsAppend, 64), FaultDecision::Ok);
        assert_eq!(inj.decide(OpClass::NandProgram, 64), FaultDecision::Ok);
        assert_eq!(inj.ops(), 1);
        assert!(matches!(
            inj.decide(OpClass::NandProgram, 64),
            FaultDecision::PowerCut { .. }
        ));
    }
}
