//! The kvcsd-mc controlled-scheduler runtime: the cooperative, fully
//! serialized execution mode the `crates/mc` explorer drives.
//!
//! In normal debug runs the `sync` shims are passive instrumentation —
//! the OS scheduler picks interleavings and the race detector/lockdep
//! observe them. In *controlled* mode (activated by
//! [`Execution::begin`], mutually exclusive with `KVCSD_PERTURB`) every
//! shim operation becomes a **scheduling point**: the thread declares the
//! operation it is about to perform — `Mutex`/`RwLock` acquire,
//! `Shared<T>` access, `spawn`'s child start, `join` — and then parks
//! until the explorer grants it. Exactly one managed thread runs at a
//! time, so the explorer observes every live thread's next transition
//! before choosing, which is precisely the visibility dynamic
//! partial-order reduction needs.
//!
//! Model notes:
//!
//! * **Acquires are choice points, releases are bookkeeping.** A guard
//!   drop updates the modeled hold state without parking. This loses no
//!   schedules for lock-only programs: any thread that could run "between
//!   a release and the holder's next acquire" is offered exactly that
//!   state at the holder's next scheduling point, because the holder runs
//!   uninterrupted from one point to the next.
//! * **Enabledness is modeled, not discovered.** `Mutex` lock on a held
//!   lock (or `join` on a live child) is *disabled*; the explorer never
//!   grants it, so the real `std::sync` primitive underneath can never
//!   block a granted thread. All-threads-disabled is a real deadlock and
//!   is reported as such, with the schedule that produced it.
//! * **Object identity is per-execution.** Each shim object carries an
//!   [`McSlot`]; ids are assigned lazily in first-touch order under the
//!   serialized schedule, so equal schedule prefixes always name objects
//!   identically — which is what makes traces replayable and DPOR's
//!   dependence comparisons meaningful.
//! * **Unmanaged threads pass through.** Only threads spawned (directly
//!   or transitively) by the harness closure are scheduled; concurrent
//!   tests in the same binary keep running free. A process-wide gate
//!   serializes explorations themselves.
//! * **Failure teardown is abort-and-drain.** On a panic or modeled
//!   deadlock the runtime flips to abort mode: every parked thread wakes
//!   and free-runs; threads stuck in a *real* deadlock (the modeled one,
//!   now materialized on the real locks) are leaked rather than joined —
//!   the process moves on and the next execution's epoch makes every
//!   stale scheduling point a no-op.
//!
//! Release builds compile the whole runtime out; [`controlled_active`]
//! is a constant `false` and the explorer runs its closure once,
//! uncontrolled.

#[cfg(debug_assertions)]
pub use imp::*;

/// Whether a controlled-scheduler execution is currently active (release
/// builds: never).
#[cfg(not(debug_assertions))]
pub fn controlled_active() -> bool {
    false
}

#[cfg(debug_assertions)]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};
    use std::time::Duration;

    /// Low bits of an [`McSlot`] word that carry the object id; the high
    /// bits carry the execution epoch that assigned it.
    const OBJ_BITS: u32 = 20;
    const OBJ_MASK: u64 = (1 << OBJ_BITS) - 1;

    /// Per-shim-object identity slot. Stores `epoch << OBJ_BITS | id`
    /// (zero = unassigned); a stale epoch means the object predates the
    /// current execution and is re-registered on first touch.
    #[derive(Debug)]
    pub struct McSlot(AtomicU64);

    impl McSlot {
        pub const fn new() -> Self {
            Self(AtomicU64::new(0))
        }
    }

    impl Default for McSlot {
        fn default() -> Self {
            Self::new()
        }
    }

    /// The operation a thread declares at a scheduling point.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum OpKind {
        /// A spawned thread's first point, before any user code runs.
        Start,
        MutexLock,
        /// `try_lock`: always enabled (it cannot block); the hold is
        /// recorded only if the real try succeeds.
        MutexTry,
        RwRead,
        RwWrite,
        /// Race-checked `Shared::read` (guard-returning).
        SharedRead,
        /// Race-checked `Shared::write` (guard-returning).
        SharedWrite,
        /// Self-synchronized `Shared::get` (acquire+release in one op).
        SharedGet,
        /// Self-synchronized `Shared::update`/`set` (RMW in one op).
        SharedRmw,
        /// `JoinHandle::join`; `obj` is the child's tid, enabled once the
        /// child has exited.
        Join,
    }

    /// How an op touches its object, for enabledness and (in the
    /// explorer) DPOR dependence.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Access {
        Exclusive,
        Shared,
    }

    impl OpKind {
        pub fn name(self) -> &'static str {
            match self {
                OpKind::Start => "start",
                OpKind::MutexLock => "mutex-lock",
                OpKind::MutexTry => "mutex-try",
                OpKind::RwRead => "rw-read",
                OpKind::RwWrite => "rw-write",
                OpKind::SharedRead => "shared-read",
                OpKind::SharedWrite => "shared-write",
                OpKind::SharedGet => "shared-get",
                OpKind::SharedRmw => "shared-rmw",
                OpKind::Join => "join",
            }
        }

        pub fn parse(s: &str) -> Option<OpKind> {
            Some(match s {
                "start" => OpKind::Start,
                "mutex-lock" => OpKind::MutexLock,
                "mutex-try" => OpKind::MutexTry,
                "rw-read" => OpKind::RwRead,
                "rw-write" => OpKind::RwWrite,
                "shared-read" => OpKind::SharedRead,
                "shared-write" => OpKind::SharedWrite,
                "shared-get" => OpKind::SharedGet,
                "shared-rmw" => OpKind::SharedRmw,
                "join" => OpKind::Join,
                _ => return None,
            })
        }

        /// `None` for `Start`/`Join`, whose `obj` is a thread id, not a
        /// sync object.
        pub fn access(self) -> Option<Access> {
            match self {
                OpKind::Start | OpKind::Join => None,
                OpKind::MutexLock | OpKind::MutexTry => Some(Access::Exclusive),
                OpKind::RwWrite | OpKind::SharedWrite | OpKind::SharedRmw => {
                    Some(Access::Exclusive)
                }
                OpKind::RwRead | OpKind::SharedRead | OpKind::SharedGet => Some(Access::Shared),
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TState {
        /// Registered at spawn but not yet parked at its `Start` point.
        Starting,
        Parked,
        Running,
        Exited,
    }

    #[derive(Debug, Clone, Copy)]
    struct ThreadSt {
        state: TState,
        kind: OpKind,
        obj: u64,
    }

    #[derive(Debug, Default, Clone, Copy)]
    struct ObjSt {
        writer: bool,
        readers: u32,
    }

    #[derive(Debug, Default)]
    struct CtrlState {
        epoch: u64,
        aborting: bool,
        threads: Vec<ThreadSt>,
        /// Threads registered but not yet parked at `Start`: the
        /// explorer waits for this to drain before offering a choice.
        starting: usize,
        running: Option<u32>,
        granted: Option<u32>,
        objects: Vec<ObjSt>,
        panicked: Vec<u32>,
    }

    /// The epoch of the active execution; 0 = controlled mode off.
    static ACTIVE_EPOCH: AtomicU64 = AtomicU64::new(0);
    static EPOCHS: AtomicU64 = AtomicU64::new(0);

    fn ctrl() -> &'static (StdMutex<CtrlState>, Condvar) {
        static S: OnceLock<(StdMutex<CtrlState>, Condvar)> = OnceLock::new();
        S.get_or_init(|| (StdMutex::new(CtrlState::default()), Condvar::new()))
    }

    /// Process-wide "one exploration at a time" gate, so concurrently
    /// running mc tests in one binary cannot interleave executions.
    fn gate() -> &'static StdMutex<()> {
        static G: OnceLock<StdMutex<()>> = OnceLock::new();
        G.get_or_init(|| StdMutex::new(()))
    }

    fn relock<'a, T>(m: &'a StdMutex<T>) -> StdMutexGuard<'a, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    thread_local! {
        /// `(epoch, tid)` when this thread belongs to the active execution.
        static MANAGED: Cell<Option<(u64, u32)>> = const { Cell::new(None) };
    }

    fn managed() -> Option<(u64, u32)> {
        MANAGED.try_with(|m| m.get()).ok().flatten()
    }

    /// Whether a controlled-scheduler execution is currently active.
    pub fn controlled_active() -> bool {
        ACTIVE_EPOCH.load(Ordering::Relaxed) != 0
    }

    fn ensure_obj(st: &mut CtrlState, slot: &McSlot) -> u64 {
        let v = slot.0.load(Ordering::Relaxed);
        if v != 0 && (v >> OBJ_BITS) == st.epoch {
            return v & OBJ_MASK;
        }
        let id = st.objects.len() as u64;
        assert!(id < OBJ_MASK, "kvcsd-mc: object id space exhausted");
        st.objects.push(ObjSt::default());
        slot.0.store((st.epoch << OBJ_BITS) | id, Ordering::Relaxed);
        id
    }

    fn enabled_in(st: &CtrlState, t: &ThreadSt) -> bool {
        match t.kind {
            OpKind::Start | OpKind::MutexTry => true,
            OpKind::Join => st
                .threads
                .get(t.obj as usize)
                .is_none_or(|c| c.state == TState::Exited),
            k => {
                let o = st.objects[t.obj as usize];
                match k.access() {
                    Some(Access::Exclusive) => !o.writer && o.readers == 0,
                    Some(Access::Shared) => !o.writer,
                    None => true,
                }
            }
        }
    }

    /// Record the hold effects of a just-granted op.
    fn apply_grant(st: &mut CtrlState, tid: u32) {
        let t = st.threads[tid as usize];
        match t.kind {
            OpKind::Start | OpKind::Join | OpKind::MutexTry => {}
            k => {
                if let Some(a) = k.access() {
                    let o = &mut st.objects[t.obj as usize];
                    match a {
                        Access::Exclusive => o.writer = true,
                        Access::Shared => o.readers += 1,
                    }
                }
            }
        }
    }

    enum Target<'a> {
        Slot(&'a McSlot),
        Child(u32),
        None,
    }

    /// Declare `kind`, then block until the explorer grants this thread.
    /// Returns immediately for unmanaged threads, stale epochs and abort
    /// mode (the free-run path).
    fn park(ep: u64, tid: u32, kind: OpKind, target: Target<'_>) {
        let (lock, cvar) = ctrl();
        let mut st = relock(lock);
        if st.epoch != ep || st.aborting {
            return;
        }
        let obj = match target {
            Target::Slot(slot) => ensure_obj(&mut st, slot),
            Target::Child(c) => c as u64,
            Target::None => 0,
        };
        if st.threads[tid as usize].state == TState::Starting {
            st.starting -= 1;
        } else if st.running == Some(tid) {
            st.running = None;
        }
        {
            let t = &mut st.threads[tid as usize];
            t.state = TState::Parked;
            t.kind = kind;
            t.obj = obj;
        }
        cvar.notify_all();
        loop {
            if st.epoch != ep || st.aborting {
                return;
            }
            if st.granted == Some(tid) {
                st.granted = None;
                apply_grant(&mut st, tid);
                st.threads[tid as usize].state = TState::Running;
                st.running = Some(tid);
                cvar.notify_all();
                return;
            }
            st = cvar.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Scheduling point for an operation on a shim object. Called by
    /// `kvcsd_sim::sync` before the real primitive is touched.
    pub(crate) fn point_sync(slot: &McSlot, kind: OpKind) {
        if ACTIVE_EPOCH.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some((ep, tid)) = managed() else {
            return;
        };
        park(ep, tid, kind, Target::Slot(slot));
    }

    /// Scheduling point for `JoinHandle::join`. `child` is the handle's
    /// managed identity, if the child was spawned under this execution.
    pub(crate) fn point_join(child: Option<(u64, u32)>) {
        if ACTIVE_EPOCH.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some((ep, tid)) = managed() else {
            return;
        };
        let Some((cep, ctid)) = child else {
            return;
        };
        if cep != ep {
            return;
        }
        park(ep, tid, OpKind::Join, Target::Child(ctid));
    }

    /// Hold-state bookkeeping for a guard drop or the release half of a
    /// self-synchronized `Shared` op. Never parks.
    pub(crate) fn release_sync(slot: &McSlot, access: Access) {
        if ACTIVE_EPOCH.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some((ep, _)) = managed() else {
            return;
        };
        let (lock, _) = ctrl();
        let mut st = relock(lock);
        if st.epoch != ep || st.aborting {
            return;
        }
        let v = slot.0.load(Ordering::Relaxed);
        if v == 0 || (v >> OBJ_BITS) != st.epoch {
            return;
        }
        let o = &mut st.objects[(v & OBJ_MASK) as usize];
        match access {
            Access::Exclusive => o.writer = false,
            Access::Shared => o.readers = o.readers.saturating_sub(1),
        }
    }

    /// Record the hold of a `try_lock` that actually succeeded.
    pub(crate) fn try_acquired(slot: &McSlot) {
        if ACTIVE_EPOCH.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some((ep, _)) = managed() else {
            return;
        };
        let (lock, _) = ctrl();
        let mut st = relock(lock);
        if st.epoch != ep || st.aborting {
            return;
        }
        let v = slot.0.load(Ordering::Relaxed);
        if v == 0 || (v >> OBJ_BITS) != st.epoch {
            return;
        }
        st.objects[(v & OBJ_MASK) as usize].writer = true;
    }

    /// A child thread's registration, handed from the spawning (managed)
    /// thread into the child's closure.
    #[derive(Debug)]
    pub struct SpawnToken {
        epoch: u64,
        tid: u32,
    }

    impl SpawnToken {
        pub(crate) fn ids(&self) -> (u64, u32) {
            (self.epoch, self.tid)
        }
    }

    /// Register a child about to be spawned by the current (managed)
    /// thread; `None` when controlled mode is off or the spawner is
    /// unmanaged — the child then runs free.
    pub(crate) fn register_spawn() -> Option<SpawnToken> {
        if ACTIVE_EPOCH.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let (ep, _) = managed()?;
        let (lock, _) = ctrl();
        let mut st = relock(lock);
        if st.epoch != ep || st.aborting {
            return None;
        }
        let tid = st.threads.len() as u32;
        st.threads.push(ThreadSt {
            state: TState::Starting,
            kind: OpKind::Start,
            obj: 0,
        });
        st.starting += 1;
        Some(SpawnToken { epoch: ep, tid })
    }

    /// Scope marking the current OS thread as the managed thread `tok`
    /// names: parks at its `Start` point immediately, and marks the
    /// thread exited (recording a panic if unwinding) on drop.
    #[derive(Debug)]
    pub(crate) struct ThreadScope {
        epoch: u64,
        tid: u32,
    }

    pub(crate) fn enter_thread(tok: SpawnToken) -> ThreadScope {
        let SpawnToken { epoch, tid } = tok;
        let _ = MANAGED.try_with(|m| m.set(Some((epoch, tid))));
        park(epoch, tid, OpKind::Start, Target::None);
        ThreadScope { epoch, tid }
    }

    impl Drop for ThreadScope {
        fn drop(&mut self) {
            let (lock, cvar) = ctrl();
            let mut st = relock(lock);
            if st.epoch == self.epoch {
                if std::thread::panicking() {
                    st.panicked.push(self.tid);
                }
                if st.threads[self.tid as usize].state == TState::Starting {
                    st.starting -= 1;
                }
                st.threads[self.tid as usize].state = TState::Exited;
                if st.running == Some(self.tid) {
                    st.running = None;
                }
                cvar.notify_all();
            }
            drop(st);
            let _ = MANAGED.try_with(|m| m.set(None));
        }
    }

    /// One thread's declared next transition, as offered to the explorer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Pending {
        pub tid: u32,
        pub kind: OpKind,
        /// Sync-object id, or the child tid for `Join` (meaningless for
        /// `Start`).
        pub obj: u64,
        pub enabled: bool,
    }

    /// What the explorer sees at quiescence.
    #[derive(Debug, Clone)]
    pub enum Step {
        /// Live threads with their declared ops; choose one enabled tid
        /// and [`Execution::grant`] it. All-disabled = modeled deadlock.
        Choice(Vec<Pending>),
        /// Every managed thread exited cleanly.
        Done,
        /// At least one managed thread panicked; stop the schedule.
        Panicked,
    }

    /// Result of tearing an execution down.
    #[derive(Debug, Clone)]
    pub struct ExecOutcome {
        /// Panic payload of the root thread, if it panicked.
        pub panic: Option<String>,
        /// Number of managed threads that panicked.
        pub panicked_threads: usize,
    }

    fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
        p.downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }

    /// One controlled execution of a harness closure. The explorer drives
    /// it: `begin` → `start(f)` → loop { `next` → `grant` } → `finish`.
    pub struct Execution {
        epoch: u64,
        root: Option<crate::sync::JoinHandle<()>>,
        done: bool,
        _gate: StdMutexGuard<'static, ()>,
    }

    impl Execution {
        /// Enter controlled mode. Panics if seeded perturbation is
        /// active: two schedulers silently interleaving would make both
        /// worthless.
        pub fn begin() -> Execution {
            let gate = relock(gate());
            if crate::perturb::active_seed().is_some() {
                panic!(
                    "kvcsd-mc: cannot enter controlled-scheduler mode while a KVCSD_PERTURB \
                     seed is active — the mc scheduler and the seeded yield-point perturbation \
                     are mutually exclusive (two schedulers would silently interleave). Unset \
                     KVCSD_PERTURB / call kvcsd_sim::perturb::install_seed(0) before exploring."
                );
            }
            let epoch = EPOCHS.fetch_add(1, Ordering::Relaxed) + 1;
            {
                let (lock, _) = ctrl();
                let mut st = relock(lock);
                *st = CtrlState {
                    epoch,
                    ..CtrlState::default()
                };
            }
            ACTIVE_EPOCH.store(epoch, Ordering::Relaxed);
            Execution {
                epoch,
                root: None,
                done: false,
                _gate: gate,
            }
        }

        /// Spawn the harness closure as the root managed thread (tid 0).
        pub fn start<F: FnOnce() + Send + 'static>(&mut self, f: F) {
            {
                let (lock, _) = ctrl();
                let mut st = relock(lock);
                assert!(
                    st.threads.is_empty(),
                    "kvcsd-mc: Execution::start called twice"
                );
                st.threads.push(ThreadSt {
                    state: TState::Starting,
                    kind: OpKind::Start,
                    obj: 0,
                });
                st.starting = 1;
            }
            let tok = SpawnToken {
                epoch: self.epoch,
                tid: 0,
            };
            self.root = Some(crate::sync::spawn_root(tok, f));
        }

        /// Block until the execution is quiescent (no managed thread
        /// running or starting up), then report its state.
        // Not an Iterator: the caller must interleave grant() between
        // calls, and Step::Choice borrows no item to yield.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> Step {
            let (lock, cvar) = ctrl();
            let mut st = relock(lock);
            loop {
                assert_eq!(st.epoch, self.epoch, "kvcsd-mc: stale Execution handle");
                if st.running.is_none() && st.starting == 0 && st.granted.is_none() {
                    if !st.panicked.is_empty() {
                        return Step::Panicked;
                    }
                    if st.threads.iter().all(|t| t.state == TState::Exited) {
                        return Step::Done;
                    }
                    let pending = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.state == TState::Parked)
                        .map(|(i, t)| Pending {
                            tid: i as u32,
                            kind: t.kind,
                            obj: t.obj,
                            enabled: enabled_in(&st, t),
                        })
                        .collect();
                    return Step::Choice(pending);
                }
                let (g, timeout) = cvar
                    .wait_timeout(st, Duration::from_secs(30))
                    .unwrap_or_else(|p| p.into_inner());
                st = g;
                if timeout.timed_out() {
                    panic!(
                        "kvcsd-mc: controlled execution made no progress for 30s — a managed \
                         thread is blocked outside any scheduling point (raw std primitive, \
                         channel recv, or unbounded spin without shim accesses)"
                    );
                }
            }
        }

        /// Grant the next slice to `tid` (must be parked and enabled).
        pub fn grant(&mut self, tid: u32) {
            let (lock, cvar) = ctrl();
            let mut st = relock(lock);
            assert_eq!(st.epoch, self.epoch, "kvcsd-mc: stale Execution handle");
            let t = st.threads[tid as usize];
            assert!(
                t.state == TState::Parked,
                "kvcsd-mc: grant({tid}) but thread is {:?}",
                t.state
            );
            assert!(
                enabled_in(&st, &t),
                "kvcsd-mc: grant({tid}) but its {} is disabled",
                t.kind.name()
            );
            st.granted = Some(tid);
            cvar.notify_all();
        }

        /// Tear the execution down: abort-wake every parked thread, wait
        /// a bounded time for the root to drain, leak anything that
        /// materialized a real deadlock. Returns panic information.
        pub fn finish(mut self) -> ExecOutcome {
            self.shutdown()
        }

        fn shutdown(&mut self) -> ExecOutcome {
            self.done = true;
            {
                let (lock, cvar) = ctrl();
                let mut st = relock(lock);
                st.aborting = true;
                cvar.notify_all();
            }
            let mut panic = None;
            if let Some(h) = self.root.take() {
                // The modeled deadlock is now a real one on the freed
                // threads; poll briefly, then detach rather than hang.
                let mut spins = 0u32;
                while !h.is_finished() && spins < 2000 {
                    std::thread::sleep(Duration::from_millis(1));
                    spins += 1;
                }
                if h.is_finished() {
                    if let Err(p) = h.join() {
                        panic = Some(payload_str(p.as_ref()));
                    }
                }
            }
            let panicked_threads = {
                let (lock, _) = ctrl();
                relock(lock).panicked.len()
            };
            ACTIVE_EPOCH.store(0, Ordering::Relaxed);
            ExecOutcome {
                panic,
                panicked_threads,
            }
        }
    }

    impl Drop for Execution {
        fn drop(&mut self) {
            if !self.done {
                let _ = self.shutdown();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn perturb_and_controlled_mode_exclude_each_other() {
            // Seed installed first: entering controlled mode must refuse.
            crate::perturb::install_seed(0x5EED);
            let begun = std::panic::catch_unwind(std::panic::AssertUnwindSafe(Execution::begin));
            crate::perturb::install_seed(0);
            let msg = match begun {
                Ok(_) => panic!("Execution::begin must refuse while a perturb seed is active"),
                Err(p) => payload_str(p.as_ref()),
            };
            assert!(msg.contains("mutually exclusive"), "{msg}");

            // Controlled mode active first: installing a seed must refuse.
            let exec = Execution::begin();
            let installed = std::panic::catch_unwind(|| crate::perturb::install_seed(7));
            let msg = match installed {
                Ok(()) => panic!("install_seed must refuse while an mc execution is active"),
                Err(p) => payload_str(p.as_ref()),
            };
            assert!(msg.contains("mutually exclusive"), "{msg}");
            assert!(
                crate::perturb::active_seed().is_none(),
                "refused seed must not stick"
            );
            drop(exec);
            assert!(!controlled_active());
        }
    }
}
