//! Hardware and cost-model constants, mirroring Table I of the paper.
//!
//! Everything that converts *measured work* (bytes moved, keys compared)
//! into *simulated nanoseconds* lives here, so the calibration surface of
//! the reproduction is one file. The default values correspond to the
//! paper's testbed: a 32-core AMD EPYC host with 512 GB DDR4, and a KV-CSD
//! built from a quad-core ARM Cortex-A53 SoC with 8 GB DDR4 in front of a
//! 15 TB NVMe ZNS SSD, attached over 16 lanes of PCIe Gen3.

/// Static description of the simulated testbed (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// Host CPU cores available for pinning test threads (paper: 32).
    pub host_cores: u32,
    /// SoC CPU cores inside the device (paper: 4x ARM Cortex-A53).
    pub soc_cores: u32,
    /// SoC DRAM budget in bytes available to the on-device store
    /// (paper: 8 GB; scaled runs shrink this together with the dataset).
    pub soc_dram_bytes: u64,
    /// PCIe host<->device bandwidth in bytes/sec (16 lanes Gen3 ~ 15.75 GB/s;
    /// we use an achievable 12 GB/s).
    pub pcie_bw_bps: f64,
    /// Per-NVMe-command round-trip latency in ns (doorbell + completion).
    pub pcie_cmd_ns: u64,
    /// Number of independent NAND channels in the SSD.
    pub flash_channels: u32,
    /// Per-channel sustained write bandwidth in bytes/sec.
    pub channel_write_bps: f64,
    /// Per-channel sustained read bandwidth in bytes/sec.
    pub channel_read_bps: f64,
    /// Fixed per-page-op channel occupancy in ns (command/addressing).
    pub page_op_ns: u64,
    /// Block erase channel occupancy in ns.
    pub erase_ns: u64,
    /// NAND page size in bytes (also the DB block size in both stores).
    pub page_bytes: u32,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        Self {
            host_cores: 32,
            soc_cores: 4,
            soc_dram_bytes: 8 << 30,
            pcie_bw_bps: 12.0e9,
            pcie_cmd_ns: 3_000,
            flash_channels: 16,
            channel_write_bps: 500.0e6,
            channel_read_bps: 900.0e6,
            page_op_ns: 8_000,
            erase_ns: 2_000_000,
            page_bytes: 4096,
        }
    }
}

impl HardwareSpec {
    /// Aggregate SSD write bandwidth across all channels, bytes/sec.
    pub fn ssd_write_bw(&self) -> f64 {
        self.channel_write_bps * self.flash_channels as f64
    }

    /// Aggregate SSD read bandwidth across all channels, bytes/sec.
    pub fn ssd_read_bw(&self) -> f64 {
        self.channel_read_bps * self.flash_channels as f64
    }
}

/// Constants converting algorithmic work into CPU nanoseconds.
///
/// The *counts* these multiply (keys inserted, bytes merged, blocks
/// checksummed...) are measured from real execution; only the per-unit
/// costs are configured. Host costs are charged at these rates; SoC work
/// is charged at `soc_slowdown` times the host rate, reflecting the A53's
/// lower per-core performance.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// ns per byte of bulk memory movement (memcpy/marshalling) on a host core.
    pub memcpy_ns_per_byte: f64,
    /// ns per key comparison (memtable insert hops, merge heap ops).
    pub key_cmp_ns: f64,
    /// ns per skiplist/memtable insert, excluding comparisons.
    pub memtable_insert_ns: f64,
    /// ns per byte of checksum / encode / decode work.
    pub codec_ns_per_byte: f64,
    /// ns per bloom-filter probe or insert.
    pub bloom_op_ns: f64,
    /// ns of fixed host-filesystem overhead per POSIX call (VFS + journal
    /// bookkeeping); the "software layers tax" of DESIGN.md.
    pub fs_call_ns: f64,
    /// ns of OS block-layer + driver overhead per block I/O the host issues.
    pub host_blockio_ns: f64,
    /// Fixed per-key-value-pair processing cost on the device data path
    /// (command parsing, log framing, buffer management), in host-core ns
    /// before the SoC slowdown is applied. Real KV-SSD SoCs sustain a few
    /// hundred thousand ops per second per core, which this models.
    pub kv_op_ns: f64,
    /// Multiplier applied to CPU costs when the work runs on an SoC core.
    pub soc_slowdown: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            memcpy_ns_per_byte: 0.05,
            key_cmp_ns: 18.0,
            memtable_insert_ns: 250.0,
            codec_ns_per_byte: 0.35,
            bloom_op_ns: 45.0,
            fs_call_ns: 1_000.0,
            host_blockio_ns: 4_000.0,
            kv_op_ns: 150.0,
            soc_slowdown: 2.8,
        }
    }
}

/// Bundled configuration handed to stores and harnesses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimConfig {
    pub hw: HardwareSpec,
    pub cost: CostModel,
}

impl SimConfig {
    /// Configuration scaled for laptop-sized runs: the hardware constants
    /// stay identical (ratios must be preserved) but the SoC DRAM budget is
    /// shrunk proportionally with the dataset so external-sort pass counts
    /// match the full-scale behaviour.
    pub fn scaled(soc_dram_bytes: u64) -> Self {
        let mut cfg = Self::default();
        cfg.hw.soc_dram_bytes = soc_dram_bytes;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_table1() {
        let hw = HardwareSpec::default();
        assert_eq!(hw.host_cores, 32);
        assert_eq!(hw.soc_cores, 4);
        assert_eq!(hw.soc_dram_bytes, 8 << 30);
        assert_eq!(hw.flash_channels, 16);
        assert_eq!(hw.page_bytes, 4096);
    }

    #[test]
    fn aggregate_bandwidths() {
        let hw = HardwareSpec::default();
        assert!((hw.ssd_write_bw() - 8.0e9).abs() < 1.0);
        assert!((hw.ssd_read_bw() - 14.4e9).abs() < 1.0);
    }

    #[test]
    fn scaled_config_only_changes_dram() {
        let cfg = SimConfig::scaled(64 << 20);
        assert_eq!(cfg.hw.soc_dram_bytes, 64 << 20);
        let dflt = SimConfig::default();
        assert_eq!(cfg.hw.host_cores, dflt.hw.host_cores);
        assert_eq!(cfg.cost, dflt.cost);
    }

    #[test]
    fn config_debug_emits_fields() {
        let cfg = SimConfig::default();
        let s = format!("{:?} host_cores={}", cfg, cfg.hw.host_cores);
        assert!(s.contains("host_cores"));
    }
}
