//! A monotonically advancing virtual clock in nanoseconds.
//!
//! The clock is advisory: phase elapsed times are computed analytically by
//! [`crate::TimeModel`], and harnesses advance the clock by those amounts so
//! that multi-phase experiments report consistent cumulative timestamps.

use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual time in nanoseconds since simulation start.
///
/// Shared freely across threads; all operations are atomic. Time never goes
/// backwards: [`VirtualClock::advance_to`] is a max-update.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advance the clock by `delta_ns`, returning the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Move the clock forward to at least `target_ns` (max-update).
    pub fn advance_to(&self, target_ns: u64) {
        self.now_ns.fetch_max(target_ns, Ordering::AcqRel);
    }
}

/// Wall-clock stopwatch for self-timed benchmark harnesses.
///
/// This module is the single place in the workspace allowed to touch host
/// time (`kvcsd-check` rule `time`); everything that needs to measure the
/// harness's own speed — as opposed to the [`VirtualClock`]'s simulated
/// time — goes through a `WallTimer` so that no data-path code can
/// accidentally become wall-clock dependent and break simulation
/// determinism.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer(std::time::Instant);

impl WallTimer {
    /// Start a stopwatch at the current host time.
    pub fn start() -> Self {
        Self(std::time::Instant::now())
    }

    /// Host time elapsed since [`WallTimer::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }

    /// Elapsed host seconds since [`WallTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_timer_moves_forward() {
        let t = WallTimer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(t.elapsed_secs() >= 0.0);
        assert!(t.elapsed() >= std::time::Duration::ZERO);
    }

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_secs(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::new();
        c.advance_to(100);
        assert_eq!(c.now_ns(), 100);
        c.advance_to(50); // must not move backwards
        assert_eq!(c.now_ns(), 100);
        c.advance_to(200);
        assert_eq!(c.now_ns(), 200);
    }

    #[test]
    fn seconds_conversion() {
        let c = VirtualClock::new();
        c.advance(1_500_000_000);
        assert!((c.now_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_advance() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ns(), 4000);
    }
}
