//! The I/O ledger: measured work performed by the real algorithms.
//!
//! Every store in this workspace (the KV-CSD device store and the software
//! LSM baseline) charges its work here as it executes: CPU nanoseconds for
//! comparisons/memcpy/codec work, PCIe bytes for host-device DMA, and NAND
//! page operations (with per-channel busy time) for storage I/O. Figures
//! 7b and 10b of the paper are direct dumps of these counters; the
//! [`crate::TimeModel`] turns ledger deltas into phase times.

use crate::sync::{Mutex, Shared};
use std::collections::BTreeMap;

/// Thread-safe work counters. One ledger is shared per simulated testbed.
///
/// Counters are intentionally lock-free-style [`Shared`] cells (the
/// atomic-RMW analogue): charges from every simulated core self-
/// synchronize through each cell, and the debug-build race detector still
/// observes every access (DESIGN.md §11).
#[derive(Debug)]
pub struct IoLedger {
    host_cpu_ns: Shared<u64>,
    soc_cpu_ns: Shared<u64>,
    pcie_h2d_bytes: Shared<u64>,
    pcie_d2h_bytes: Shared<u64>,
    pcie_msgs: Shared<u64>,
    nand_read_pages: Shared<u64>,
    nand_program_pages: Shared<u64>,
    nand_erase_blocks: Shared<u64>,
    fs_calls: Shared<u64>,
    host_block_ios: Shared<u64>,
    bridge_busy_ns: Shared<u64>,
    channel_busy_ns: Box<[Shared<u64>]>,
    page_bytes: u64,
    custom: Mutex<BTreeMap<&'static str, u64>>,
}

impl IoLedger {
    /// Create a ledger for an SSD with `channels` NAND channels and
    /// `page_bytes`-sized pages.
    pub fn new(channels: u32, page_bytes: u32) -> Self {
        Self {
            host_cpu_ns: Shared::new(0),
            soc_cpu_ns: Shared::new(0),
            pcie_h2d_bytes: Shared::new(0),
            pcie_d2h_bytes: Shared::new(0),
            pcie_msgs: Shared::new(0),
            nand_read_pages: Shared::new(0),
            nand_program_pages: Shared::new(0),
            nand_erase_blocks: Shared::new(0),
            fs_calls: Shared::new(0),
            host_block_ios: Shared::new(0),
            bridge_busy_ns: Shared::new(0),
            channel_busy_ns: (0..channels).map(|_| Shared::new(0)).collect(),
            page_bytes: page_bytes as u64,
            custom: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of NAND channels this ledger tracks.
    pub fn channels(&self) -> u32 {
        self.channel_busy_ns.len() as u32
    }

    // ---- charging -------------------------------------------------------

    /// Charge `ns` of host-core CPU work.
    pub fn charge_host_cpu(&self, ns: f64) {
        self.host_cpu_ns.update(|c| *c += ns.max(0.0) as u64);
    }

    /// Charge `ns` of SoC-core CPU work (already scaled by `soc_slowdown`).
    pub fn charge_soc_cpu(&self, ns: f64) {
        self.soc_cpu_ns.update(|c| *c += ns.max(0.0) as u64);
    }

    /// Record a host-to-device DMA transfer of `bytes` within one message.
    pub fn dma_h2d(&self, bytes: u64) {
        self.pcie_h2d_bytes.update(|c| *c += bytes);
        self.pcie_msgs.update(|c| *c += 1);
    }

    /// Record a device-to-host DMA transfer of `bytes` within one message.
    pub fn dma_d2h(&self, bytes: u64) {
        self.pcie_d2h_bytes.update(|c| *c += bytes);
        self.pcie_msgs.update(|c| *c += 1);
    }

    /// Record device-to-host DMA bytes that ride an existing command's
    /// completion (no additional round trip).
    pub fn dma_d2h_payload(&self, bytes: u64) {
        self.pcie_d2h_bytes.update(|c| *c += bytes);
    }

    /// Record `pages` NAND page reads on `channel`, occupying it `busy_ns`.
    pub fn nand_read(&self, channel: u32, pages: u64, busy_ns: u64) {
        self.nand_read_pages.update(|c| *c += pages);
        self.channel_busy_ns[channel as usize].update(|c| *c += busy_ns);
    }

    /// Record `pages` NAND page programs on `channel`, occupying it `busy_ns`.
    pub fn nand_program(&self, channel: u32, pages: u64, busy_ns: u64) {
        self.nand_program_pages.update(|c| *c += pages);
        self.channel_busy_ns[channel as usize].update(|c| *c += busy_ns);
    }

    /// Record a block erase on `channel`, occupying it `busy_ns`.
    pub fn nand_erase(&self, channel: u32, busy_ns: u64) {
        self.nand_erase_blocks.update(|c| *c += 1);
        self.channel_busy_ns[channel as usize].update(|c| *c += busy_ns);
    }

    /// Record one host filesystem call (VFS-layer overhead).
    pub fn fs_call(&self) {
        self.fs_calls.update(|c| *c += 1);
    }

    /// Record one block I/O submitted through the host OS block layer.
    pub fn host_block_io(&self) {
        self.host_block_ios.update(|c| *c += 1);
    }

    /// Occupy the host-to-NAND *bridge* for `ns`. The baseline reaches
    /// the SSD as a block device through the CSD's SoC (PCIe x4
    /// back-link plus the ext4 block path) — a shared serial resource
    /// that KV-CSD's on-device store bypasses entirely.
    pub fn bridge_busy(&self, ns: u64) {
        self.bridge_busy_ns.update(|c| *c += ns);
    }

    /// Bump a named diagnostic counter (cache hits, bloom negatives, ...).
    pub fn bump(&self, name: &'static str, by: u64) {
        *self.custom.lock().entry(name).or_insert(0) += by;
    }

    /// Read a named diagnostic counter.
    pub fn custom(&self, name: &str) -> u64 {
        self.custom.lock().get(name).copied().unwrap_or(0)
    }

    // ---- snapshots ------------------------------------------------------

    /// Capture current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            host_cpu_ns: self.host_cpu_ns.get(),
            soc_cpu_ns: self.soc_cpu_ns.get(),
            pcie_h2d_bytes: self.pcie_h2d_bytes.get(),
            pcie_d2h_bytes: self.pcie_d2h_bytes.get(),
            pcie_msgs: self.pcie_msgs.get(),
            nand_read_pages: self.nand_read_pages.get(),
            nand_program_pages: self.nand_program_pages.get(),
            nand_erase_blocks: self.nand_erase_blocks.get(),
            fs_calls: self.fs_calls.get(),
            host_block_ios: self.host_block_ios.get(),
            bridge_busy_ns: self.bridge_busy_ns.get(),
            channel_busy_ns: self.channel_busy_ns.iter().map(|c| c.get()).collect(),
            page_bytes: self.page_bytes,
        }
    }
}

/// A point-in-time copy of the ledger; subtract two to get per-phase work.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    pub host_cpu_ns: u64,
    pub soc_cpu_ns: u64,
    pub pcie_h2d_bytes: u64,
    pub pcie_d2h_bytes: u64,
    pub pcie_msgs: u64,
    pub nand_read_pages: u64,
    pub nand_program_pages: u64,
    pub nand_erase_blocks: u64,
    pub fs_calls: u64,
    pub host_block_ios: u64,
    pub bridge_busy_ns: u64,
    pub channel_busy_ns: Vec<u64>,
    pub page_bytes: u64,
}

impl LedgerSnapshot {
    /// Work performed between `earlier` and `self` (all counters are
    /// monotonic, so plain saturating subtraction is exact).
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            host_cpu_ns: self.host_cpu_ns.saturating_sub(earlier.host_cpu_ns),
            soc_cpu_ns: self.soc_cpu_ns.saturating_sub(earlier.soc_cpu_ns),
            pcie_h2d_bytes: self.pcie_h2d_bytes.saturating_sub(earlier.pcie_h2d_bytes),
            pcie_d2h_bytes: self.pcie_d2h_bytes.saturating_sub(earlier.pcie_d2h_bytes),
            pcie_msgs: self.pcie_msgs.saturating_sub(earlier.pcie_msgs),
            nand_read_pages: self.nand_read_pages.saturating_sub(earlier.nand_read_pages),
            nand_program_pages: self
                .nand_program_pages
                .saturating_sub(earlier.nand_program_pages),
            nand_erase_blocks: self
                .nand_erase_blocks
                .saturating_sub(earlier.nand_erase_blocks),
            fs_calls: self.fs_calls.saturating_sub(earlier.fs_calls),
            host_block_ios: self.host_block_ios.saturating_sub(earlier.host_block_ios),
            bridge_busy_ns: self.bridge_busy_ns.saturating_sub(earlier.bridge_busy_ns),
            channel_busy_ns: self
                .channel_busy_ns
                .iter()
                .zip(earlier.channel_busy_ns.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            page_bytes: self.page_bytes,
        }
    }

    /// Total bytes read from NAND (Fig 7b / 10b "storage read" series).
    pub fn storage_read_bytes(&self) -> u64 {
        self.nand_read_pages * self.page_bytes
    }

    /// Total bytes written to NAND (Fig 7b / 10b "storage write" series).
    pub fn storage_write_bytes(&self) -> u64 {
        self.nand_program_pages * self.page_bytes
    }

    /// Busiest NAND channel occupancy in ns — the storage bottleneck term.
    pub fn max_channel_busy_ns(&self) -> u64 {
        self.channel_busy_ns.iter().copied().max().unwrap_or(0)
    }

    /// Total host<->device traffic in bytes.
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie_h2d_bytes + self.pcie_d2h_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> IoLedger {
        IoLedger::new(4, 4096)
    }

    #[test]
    fn cpu_charges_accumulate() {
        let l = ledger();
        l.charge_host_cpu(100.7);
        l.charge_host_cpu(50.2);
        l.charge_soc_cpu(10.0);
        let s = l.snapshot();
        assert_eq!(s.host_cpu_ns, 150);
        assert_eq!(s.soc_cpu_ns, 10);
    }

    #[test]
    fn negative_charge_is_clamped() {
        let l = ledger();
        l.charge_host_cpu(-5.0);
        assert_eq!(l.snapshot().host_cpu_ns, 0);
    }

    #[test]
    fn dma_counts_messages_and_bytes() {
        let l = ledger();
        l.dma_h2d(128 << 10);
        l.dma_d2h(256);
        let s = l.snapshot();
        assert_eq!(s.pcie_h2d_bytes, 128 << 10);
        assert_eq!(s.pcie_d2h_bytes, 256);
        assert_eq!(s.pcie_msgs, 2);
        assert_eq!(s.pcie_bytes(), (128 << 10) + 256);
    }

    #[test]
    fn nand_ops_track_pages_and_channel_busy() {
        let l = ledger();
        l.nand_program(1, 3, 3000);
        l.nand_read(2, 1, 500);
        l.nand_erase(1, 2_000_000);
        let s = l.snapshot();
        assert_eq!(s.nand_program_pages, 3);
        assert_eq!(s.nand_read_pages, 1);
        assert_eq!(s.nand_erase_blocks, 1);
        assert_eq!(s.channel_busy_ns, vec![0, 2_003_000, 500, 0]);
        assert_eq!(s.max_channel_busy_ns(), 2_003_000);
        assert_eq!(s.storage_write_bytes(), 3 * 4096);
        assert_eq!(s.storage_read_bytes(), 4096);
    }

    #[test]
    fn snapshot_diff_isolates_phase_work() {
        let l = ledger();
        l.charge_host_cpu(100.0);
        l.nand_program(0, 1, 10);
        let before = l.snapshot();
        l.charge_host_cpu(40.0);
        l.nand_program(0, 2, 20);
        l.dma_h2d(64);
        let after = l.snapshot();
        let d = after.since(&before);
        assert_eq!(d.host_cpu_ns, 40);
        assert_eq!(d.nand_program_pages, 2);
        assert_eq!(d.channel_busy_ns[0], 20);
        assert_eq!(d.pcie_h2d_bytes, 64);
    }

    #[test]
    fn custom_counters() {
        let l = ledger();
        l.bump("cache_hit", 3);
        l.bump("cache_hit", 2);
        assert_eq!(l.custom("cache_hit"), 5);
        assert_eq!(l.custom("missing"), 0);
    }

    #[test]
    fn concurrent_charging_is_lossless() {
        use std::sync::Arc;
        let l = Arc::new(ledger());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.charge_host_cpu(1.0);
                    l.nand_program(t % 4, 1, 7);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = l.snapshot();
        assert_eq!(s.host_cpu_ns, 4000);
        assert_eq!(s.nand_program_pages, 4000);
        assert_eq!(s.channel_busy_ns.iter().sum::<u64>(), 4000 * 7);
    }
}
