//! The replication bus: a ledger-charged fabric resource.
//!
//! A sharded KV-CSD fleet ships sealed index/block artifacts from each
//! primary to its replica peer over an RDMA-class fabric (Vardoulakis et
//! al.: replicate the *built* indexes, not the write stream). Like every
//! other resource in the simulation, the fabric is modeled by cost, not
//! by threads: a transfer charges its bytes, one message round trip and
//! the occupancy time implied by the configured bandwidth to the shared
//! [`IoLedger`], and accumulates the channel's busy time in a
//! [`Shared`] cell so tests can assert replication cost without any
//! wall-clock coupling.
//!
//! The bus deliberately does **not** advance any device's virtual clock:
//! artifact shipping is background work that overlaps foreground command
//! processing (the same latency-hiding argument as deferred compaction).
//! Foreground protocols that want to *wait* for a transfer add the
//! returned nanoseconds to their own clock explicitly.

use std::sync::Arc;

use crate::ledger::IoLedger;
use crate::sync::Shared;

/// Fabric constants for one replication channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained fabric bandwidth in bytes per second (default 25 GbE-ish
    /// RDMA: ~3 GiB/s of goodput).
    pub bytes_per_sec: f64,
    /// Fixed per-message overhead (setup + completion), nanoseconds.
    pub msg_overhead_ns: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            bytes_per_sec: 3.0 * (1u64 << 30) as f64,
            msg_overhead_ns: 5_000,
        }
    }
}

/// One replication channel between a primary and its designated peer.
#[derive(Debug)]
pub struct BusResource {
    cfg: BusConfig,
    ledger: Arc<IoLedger>,
    busy_ns: Shared<u64>,
}

impl BusResource {
    pub fn new(cfg: BusConfig, ledger: Arc<IoLedger>) -> Self {
        Self {
            cfg,
            ledger,
            busy_ns: Shared::new(0),
        }
    }

    /// The ledger this channel charges.
    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    /// Ship `bytes` over the channel; returns the simulated transfer time
    /// in nanoseconds. Charges `bus_bytes`, `bus_msgs` and `bus_busy_ns`
    /// to the ledger and accumulates the channel's busy time.
    pub fn transfer(&self, bytes: u64) -> u64 {
        let ns = self
            .cfg
            .msg_overhead_ns
            .saturating_add((bytes as f64 / self.cfg.bytes_per_sec * 1e9) as u64);
        self.ledger.bump("bus_bytes", bytes);
        self.ledger.bump("bus_msgs", 1);
        self.ledger.bump("bus_busy_ns", ns);
        self.busy_ns.update(|b| *b += ns);
        ns
    }

    /// Total simulated nanoseconds this channel has spent transferring.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(cfg: BusConfig) -> BusResource {
        BusResource::new(cfg, Arc::new(IoLedger::new(8, 4096)))
    }

    #[test]
    fn transfer_charges_bytes_messages_and_time() {
        let b = bus(BusConfig {
            bytes_per_sec: 1e9, // 1 byte per ns: easy arithmetic
            msg_overhead_ns: 100,
        });
        let ns = b.transfer(4096);
        assert_eq!(ns, 100 + 4096);
        assert_eq!(b.ledger().custom("bus_bytes"), 4096);
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
        assert_eq!(b.ledger().custom("bus_busy_ns"), ns);
        assert_eq!(b.busy_ns(), ns);
    }

    #[test]
    fn busy_time_accumulates_across_transfers() {
        let b = bus(BusConfig {
            bytes_per_sec: 1e9,
            msg_overhead_ns: 10,
        });
        let total: u64 = (0..5).map(|_| b.transfer(1000)).sum();
        assert_eq!(b.busy_ns(), total);
        assert_eq!(b.ledger().custom("bus_msgs"), 5);
        assert_eq!(b.ledger().custom("bus_bytes"), 5000);
    }

    #[test]
    fn zero_byte_ship_still_pays_the_message_overhead() {
        let b = bus(BusConfig::default());
        let ns = b.transfer(0);
        assert_eq!(ns, BusConfig::default().msg_overhead_ns);
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
    }
}
