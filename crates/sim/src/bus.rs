//! The replication bus: a ledger-charged fabric resource.
//!
//! A sharded KV-CSD fleet ships sealed index/block artifacts from each
//! primary to its replica peer over an RDMA-class fabric (Vardoulakis et
//! al.: replicate the *built* indexes, not the write stream). Like every
//! other resource in the simulation, the fabric is modeled by cost, not
//! by threads: a transfer charges its bytes, one message round trip and
//! the occupancy time implied by the configured bandwidth to the shared
//! [`IoLedger`], and accumulates the channel's busy time in a
//! [`Shared`] cell so tests can assert replication cost without any
//! wall-clock coupling.
//!
//! The bus deliberately does **not** advance any device's virtual clock:
//! artifact shipping is background work that overlaps foreground command
//! processing (the same latency-hiding argument as deferred compaction).
//! Foreground protocols that want to *wait* for a transfer add the
//! returned nanoseconds to their own clock explicitly.

use std::sync::Arc;

use crate::fault::{BusFault, FaultInjector};
use crate::ledger::IoLedger;
use crate::sync::Shared;

/// Fabric constants for one replication channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained fabric bandwidth in bytes per second (default 25 GbE-ish
    /// RDMA: ~3 GiB/s of goodput).
    pub bytes_per_sec: f64,
    /// Fixed per-message overhead (setup + completion), nanoseconds.
    pub msg_overhead_ns: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            bytes_per_sec: 3.0 * (1u64 << 30) as f64,
            msg_overhead_ns: 5_000,
        }
    }
}

/// Outcome of one fault-aware message attempt ([`BusResource::xmit`]).
/// Every variant that put bytes on the wire reports the occupancy `ns`
/// already charged to the ledger; the *sender* decides what the outcome
/// means for its protocol (ack, timeout, retransmit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusXmit {
    /// Delivered and acked within the sender's timeout. `copies` > 1 is
    /// network duplication: the receiver must treat the extras
    /// idempotently, and each copy occupied (and was charged to) the
    /// fabric.
    Delivered { ns: u64, copies: u32 },
    /// Delivered (all `copies`), but the ack missed the sender's timeout
    /// window — the reorder/late fault. The receiver has the message; the
    /// sender will retransmit and the retransmit races the late original.
    Late { ns: u64, copies: u32 },
    /// Lost on the wire after occupying it: charged, not delivered.
    Dropped { ns: u64 },
    /// The link is partitioned; nothing left the NIC and nothing was
    /// charged.
    Partitioned,
}

/// One replication channel between a primary and its designated peer.
#[derive(Debug)]
pub struct BusResource {
    cfg: BusConfig,
    ledger: Arc<IoLedger>,
    busy_ns: Shared<u64>,
    /// Link-lane fault source; `None` means a perfect network and `xmit`
    /// degenerates to a single charged `transfer`.
    injector: Option<Arc<FaultInjector>>,
}

impl BusResource {
    pub fn new(cfg: BusConfig, ledger: Arc<IoLedger>) -> Self {
        Self {
            cfg,
            ledger,
            busy_ns: Shared::new(0),
            injector: None,
        }
    }

    /// Attach a link-lane fault source (see `FaultInjector::decide_bus`);
    /// the channel consults it on every `xmit`.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The ledger this channel charges.
    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    /// True while the channel's link is inside a partition window.
    pub fn is_partitioned(&self) -> bool {
        self.injector.as_ref().is_some_and(|i| i.is_partitioned())
    }

    /// Ship `bytes` over the channel; returns the simulated transfer time
    /// in nanoseconds. Charges `bus_bytes`, `bus_msgs` and `bus_busy_ns`
    /// to the ledger and accumulates the channel's busy time.
    pub fn transfer(&self, bytes: u64) -> u64 {
        let ns = self
            .cfg
            .msg_overhead_ns
            .saturating_add((bytes as f64 / self.cfg.bytes_per_sec * 1e9) as u64);
        self.ledger.bump("bus_bytes", bytes);
        self.ledger.bump("bus_msgs", 1);
        self.ledger.bump("bus_busy_ns", ns);
        self.busy_ns.update(|b| *b += ns);
        ns
    }

    /// One *unreliable* message attempt: consult the link lane, then
    /// charge a `transfer` for every copy that actually occupied the
    /// fabric (duplicates and dropped messages both did; a partitioned
    /// link charges nothing). Delay faults add their latency to the
    /// returned occupancy. This is the only send primitive replication
    /// protocols should use — `transfer` alone models a perfect wire.
    pub fn xmit(&self, bytes: u64) -> BusXmit {
        let fault = match &self.injector {
            None => BusFault::Deliver {
                copies: 1,
                delay_ns: 0,
            },
            Some(inj) => inj.decide_bus(),
        };
        match fault {
            BusFault::Partitioned => BusXmit::Partitioned,
            BusFault::Drop => BusXmit::Dropped {
                ns: self.transfer(bytes),
            },
            BusFault::Late { copies } => {
                let mut ns = 0u64;
                for _ in 0..copies {
                    ns = ns.saturating_add(self.transfer(bytes));
                }
                BusXmit::Late { ns, copies }
            }
            BusFault::Deliver { copies, delay_ns } => {
                let mut ns = delay_ns;
                for _ in 0..copies {
                    ns = ns.saturating_add(self.transfer(bytes));
                }
                BusXmit::Delivered { ns, copies }
            }
        }
    }

    /// Total simulated nanoseconds this channel has spent transferring.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(cfg: BusConfig) -> BusResource {
        BusResource::new(cfg, Arc::new(IoLedger::new(8, 4096)))
    }

    #[test]
    fn transfer_charges_bytes_messages_and_time() {
        let b = bus(BusConfig {
            bytes_per_sec: 1e9, // 1 byte per ns: easy arithmetic
            msg_overhead_ns: 100,
        });
        let ns = b.transfer(4096);
        assert_eq!(ns, 100 + 4096);
        assert_eq!(b.ledger().custom("bus_bytes"), 4096);
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
        assert_eq!(b.ledger().custom("bus_busy_ns"), ns);
        assert_eq!(b.busy_ns(), ns);
    }

    #[test]
    fn busy_time_accumulates_across_transfers() {
        let b = bus(BusConfig {
            bytes_per_sec: 1e9,
            msg_overhead_ns: 10,
        });
        let total: u64 = (0..5).map(|_| b.transfer(1000)).sum();
        assert_eq!(b.busy_ns(), total);
        assert_eq!(b.ledger().custom("bus_msgs"), 5);
        assert_eq!(b.ledger().custom("bus_bytes"), 5000);
    }

    #[test]
    fn zero_byte_ship_still_pays_the_message_overhead() {
        let b = bus(BusConfig::default());
        let ns = b.transfer(0);
        assert_eq!(ns, BusConfig::default().msg_overhead_ns);
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
    }

    #[test]
    fn xmit_without_an_injector_is_a_single_charged_delivery() {
        let b = bus(BusConfig {
            bytes_per_sec: 1e9,
            msg_overhead_ns: 100,
        });
        assert_eq!(
            b.xmit(1000),
            BusXmit::Delivered {
                ns: 1100,
                copies: 1
            }
        );
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
        assert_eq!(b.ledger().custom("bus_bytes"), 1000);
    }

    #[test]
    fn duplicated_and_dropped_xmits_still_occupy_the_fabric() {
        use crate::fault::FaultPlan;
        // dup_prob = 1.0: every attempt delivers two charged copies.
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::none().with_link_faults(0.0, 1.0, 0.0, 0.0),
        ));
        let b = bus(BusConfig {
            bytes_per_sec: 1e9,
            msg_overhead_ns: 10,
        })
        .with_faults(inj);
        assert_eq!(b.xmit(100), BusXmit::Delivered { ns: 220, copies: 2 });
        assert_eq!(b.ledger().custom("bus_msgs"), 2);
        assert_eq!(b.ledger().custom("bus_bytes"), 200);
        // drop_prob = 1.0: charged, never delivered.
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::none().with_link_faults(1.0, 0.0, 0.0, 0.0),
        ));
        let b = bus(BusConfig {
            bytes_per_sec: 1e9,
            msg_overhead_ns: 10,
        })
        .with_faults(inj);
        assert_eq!(b.xmit(100), BusXmit::Dropped { ns: 110 });
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
    }

    #[test]
    fn partitioned_xmit_charges_nothing_until_heal() {
        use crate::fault::FaultPlan;
        let inj = Arc::new(FaultInjector::new(FaultPlan::none()));
        let b = bus(BusConfig::default()).with_faults(inj.clone());
        inj.partition_now();
        assert!(b.is_partitioned());
        assert_eq!(b.xmit(4096), BusXmit::Partitioned);
        assert_eq!(b.ledger().custom("bus_msgs"), 0);
        inj.heal_link_now();
        assert!(matches!(b.xmit(4096), BusXmit::Delivered { .. }));
        assert_eq!(b.ledger().custom("bus_msgs"), 1);
    }
}
