//! Small reporting helpers shared by the benchmark harnesses.

/// Format a byte count with binary-prefix units ("3.2 GiB").
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes as f64;
    let mut i = 0;
    while v >= 1024.0 && i + 1 < UNITS.len() {
        v /= 1024.0;
        i += 1;
    }
    if i == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[i])
    }
}

/// Exact nearest-rank percentile over an ascending-sorted sample
/// vector: the `ceil(p·n/100)`-th smallest value (1-indexed), the
/// textbook definition. `p` is clamped to `[0, 100]`; an empty sample
/// yields 0.
///
/// Contrast with the naive `sorted[(n-1)·p/100]`: for n=200, p=99 the
/// naive index is 197 (the 198th smallest) while nearest-rank demands
/// the 198th rank = index 197 only when `ceil` and the truncation
/// agree — for n=150, p=99 naive gives index 147 but nearest-rank is
/// the 149th smallest (index 148). Benchmarks report the exact rank.
pub fn nearest_rank(sorted: &[u64], p: u64) -> u64 {
    let n = sorted.len() as u64;
    if n == 0 {
        return 0;
    }
    let p = p.min(100);
    let rank = (p * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// Format a duration in seconds with adaptive units ("18.2 ms").
pub fn human_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} us", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// A simple fixed-width text table used by the per-figure harness binaries
/// to print the same rows/series the paper reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .chain(std::iter::once(&self.header))
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_is_the_exact_ceil_rank() {
        assert_eq!(nearest_rank(&[], 50), 0);
        assert_eq!(nearest_rank(&[7], 0), 7);
        assert_eq!(nearest_rank(&[7], 100), 7);
        let v: Vec<u64> = (1..=150).collect();
        // ceil(99·150/100) = 149th smallest = 149.
        assert_eq!(nearest_rank(&v, 99), 149);
        // The old truncating index would have picked 148 here.
        assert_ne!(nearest_rank(&v, 99), v[(v.len() - 1) * 99 / 100]);
        assert_eq!(nearest_rank(&v, 50), 75);
        assert_eq!(nearest_rank(&v, 100), 150);
        let v: Vec<u64> = (1..=200).collect();
        assert_eq!(nearest_rank(&v, 99), 198);
        assert_eq!(nearest_rank(&v, 50), 100);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(human_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(human_secs(2.5), "2.50 s");
        assert_eq!(human_secs(0.0185), "18.50 ms");
        assert_eq!(human_secs(42e-6), "42.00 us");
        assert_eq!(human_secs(120e-9), "120 ns");
    }

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["threads", "time"]);
        t.row(["1", "10.0"]);
        t.row(["32", "1.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("threads"));
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("32"));
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["x", "extra"]);
        let s = t.render();
        assert!(s.contains("extra"));
    }
}
