//! The time model: measured work -> simulated phase duration.
//!
//! A *phase* is a span of an experiment with fixed parallelism (e.g. "16
//! threads bulk-inserting", "device compaction running in background").
//! All resources operate as a pipeline, so a phase's elapsed time is the
//! maximum of the per-resource completion times:
//!
//! * host CPU — total charged host nanoseconds spread over the cores the
//!   phase actually uses (test threads are pinned, as in the paper), plus
//!   per-call filesystem and block-layer overheads;
//! * SoC CPU — charged SoC nanoseconds spread over the device's 4 cores;
//! * PCIe — DMA bytes at link bandwidth, plus per-command round trips
//!   which pipeline across threads but are synchronous within one thread;
//! * SSD — the busiest NAND channel (channel busy time is accumulated by
//!   the flash model as page operations execute).
//!
//! This "max of bottlenecks" shape is what lets deferred, offloaded
//! compaction pay off exactly the way the paper describes: work moved from
//! the host-CPU term into a *separate background phase* on the device
//! simply stops appearing in the foreground phase's maximum.

use crate::config::SimConfig;
use crate::ledger::LedgerSnapshot;

/// Converts ledger deltas into simulated durations.
#[derive(Debug, Clone, Default)]
pub struct TimeModel {
    cfg: SimConfig,
}

/// Per-resource completion times for one phase, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTime {
    /// Host CPU term (includes filesystem + block-layer call overhead).
    pub host_cpu_s: f64,
    /// Device SoC CPU term.
    pub soc_cpu_s: f64,
    /// PCIe DMA + command round-trip term.
    pub pcie_s: f64,
    /// Busiest-NAND-channel term.
    pub ssd_s: f64,
    /// Host block path through the CSD's SoC bridge (baseline only).
    pub bridge_s: f64,
    /// Elapsed phase time: max of the terms above.
    pub elapsed_s: f64,
}

impl PhaseTime {
    /// Human-readable name of the limiting resource.
    pub fn bottleneck(&self) -> &'static str {
        let pairs = [
            (self.host_cpu_s, "host-cpu"),
            (self.soc_cpu_s, "soc-cpu"),
            (self.pcie_s, "pcie"),
            (self.ssd_s, "ssd"),
            (self.bridge_s, "bridge"),
        ];
        pairs
            .iter()
            .fold(
                ("idle", 0.0_f64),
                |acc, (t, name)| {
                    if *t > acc.1 {
                        (name, *t)
                    } else {
                        acc
                    }
                },
            )
            .0
    }
}

impl TimeModel {
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Duration of a phase whose measured work is `work`, executed by
    /// `host_threads` pinned host threads.
    pub fn phase_time(&self, work: &LedgerSnapshot, host_threads: u32) -> PhaseTime {
        let hw = &self.cfg.hw;
        let cost = &self.cfg.cost;
        let cores = host_threads.clamp(1, hw.host_cores) as f64;

        let host_overhead_ns = work.fs_calls as f64 * cost.fs_call_ns
            + work.host_block_ios as f64 * cost.host_blockio_ns;
        let host_cpu_s = (work.host_cpu_ns as f64 + host_overhead_ns) / 1e9 / cores;

        let soc_cpu_s = work.soc_cpu_ns as f64 / 1e9 / hw.soc_cores as f64;

        let dma_s = work.pcie_bytes() as f64 / hw.pcie_bw_bps;
        // Command round trips are synchronous within a thread but overlap
        // across threads.
        let cmd_s = work.pcie_msgs as f64 * hw.pcie_cmd_ns as f64 / 1e9 / cores;
        let pcie_s = dma_s + cmd_s;

        let ssd_s = work.max_channel_busy_ns() as f64 / 1e9;
        let bridge_s = work.bridge_busy_ns as f64 / 1e9;

        let elapsed_s = host_cpu_s
            .max(soc_cpu_s)
            .max(pcie_s)
            .max(ssd_s)
            .max(bridge_s);
        PhaseTime {
            host_cpu_s,
            soc_cpu_s,
            pcie_s,
            ssd_s,
            bridge_s,
            elapsed_s,
        }
    }

    /// Duration of a device-internal background phase (no host threads).
    pub fn device_phase_time(&self, work: &LedgerSnapshot) -> PhaseTime {
        // Host terms still computed (they should be ~0 for true background
        // work); parallelism for command round trips is the SoC's.
        let mut t = self.phase_time(work, self.cfg.hw.soc_cores);
        let soc_cpu_s = work.soc_cpu_ns as f64 / 1e9 / self.cfg.hw.soc_cores as f64;
        let ssd_s = work.max_channel_busy_ns() as f64 / 1e9;
        t.elapsed_s = soc_cpu_s.max(ssd_s);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::IoLedger;

    fn model() -> TimeModel {
        TimeModel::new(SimConfig::default())
    }

    #[test]
    fn cpu_bound_phase_scales_with_threads() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        l.charge_host_cpu(32e9); // 32 cpu-seconds of work
        let w = l.snapshot();
        let t1 = m.phase_time(&w, 1);
        let t32 = m.phase_time(&w, 32);
        assert!((t1.elapsed_s - 32.0).abs() < 1e-9);
        assert!((t32.elapsed_s - 1.0).abs() < 1e-9);
        assert_eq!(t1.bottleneck(), "host-cpu");
    }

    #[test]
    fn threads_clamped_to_core_count() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        l.charge_host_cpu(64e9);
        let w = l.snapshot();
        let t = m.phase_time(&w, 1000);
        assert!((t.elapsed_s - 2.0).abs() < 1e-9); // 64s over 32 cores
    }

    #[test]
    fn ssd_bound_phase_uses_busiest_channel() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        l.nand_program(3, 100, 5_000_000_000);
        l.nand_program(4, 100, 1_000_000_000);
        let t = m.phase_time(&l.snapshot(), 8);
        assert!((t.ssd_s - 5.0).abs() < 1e-9);
        assert_eq!(t.bottleneck(), "ssd");
    }

    #[test]
    fn pcie_term_includes_bandwidth_and_round_trips() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        l.dma_h2d(12_000_000_000); // exactly 1 second at 12 GB/s
        let w = l.snapshot();
        let t = m.phase_time(&w, 1);
        // one message: + one command round trip
        let cmd_s = crate::config::HardwareSpec::default().pcie_cmd_ns as f64 / 1e9;
        assert!((t.pcie_s - (1.0 + cmd_s)).abs() < 1e-9);
    }

    #[test]
    fn fs_overhead_lands_on_host_cpu() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        for _ in 0..1000 {
            l.fs_call();
            l.host_block_io();
        }
        let t = m.phase_time(&l.snapshot(), 1);
        let cost = crate::config::CostModel::default();
        let expect = (1000.0 * cost.fs_call_ns + 1000.0 * cost.host_blockio_ns) / 1e9;
        assert!((t.host_cpu_s - expect).abs() < 1e-12);
    }

    #[test]
    fn device_phase_ignores_host_terms() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        l.charge_soc_cpu(8e9); // 8 soc-cpu-seconds over 4 cores = 2s
        l.charge_host_cpu(100e9); // must not affect a device phase
        let t = m.device_phase_time(&l.snapshot());
        assert!((t.elapsed_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_phase_is_instant_and_idle() {
        let m = model();
        let l = IoLedger::new(16, 4096);
        let t = m.phase_time(&l.snapshot(), 4);
        assert_eq!(t.elapsed_s, 0.0);
        assert_eq!(t.bottleneck(), "idle");
    }
}
