//! A tiny deterministic RNG for hot simulation paths.
//!
//! `xorshift64*` is used where the `rand` crate would be overkill (e.g. the
//! zone manager randomising stripe offsets per zone cluster). It is
//! deterministic across platforms so experiments are exactly repeatable.

/// xorshift64* generator. Not cryptographic; excellent for simulation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped to a fixed constant
    /// because xorshift has an all-zeroes fixed point.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift (Lemire) bounded generation: fast, slight bias
        // negligible for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(16) < 16);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = XorShift64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
