//! Phase orchestration: snapshot the ledger around a span of real work and
//! convert the delta into simulated time.

use std::sync::Arc;

use crate::clock::VirtualClock;
use crate::ledger::{IoLedger, LedgerSnapshot};
use crate::model::{PhaseTime, TimeModel};

/// A completed phase: its name, parallelism, measured work and duration.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    pub name: String,
    pub host_threads: u32,
    pub work: LedgerSnapshot,
    pub time: PhaseTime,
    /// Whether the phase ran in the device background (did not block the
    /// host application).
    pub background: bool,
}

/// Runs named phases, accumulating a report list and advancing the clock.
///
/// Foreground phases advance the virtual clock; background (device) phases
/// do not — their duration is recorded but, exactly as the paper argues,
/// the host application never waits for them.
#[derive(Debug)]
pub struct PhaseRunner {
    ledger: Arc<IoLedger>,
    model: TimeModel,
    clock: VirtualClock,
    reports: Vec<PhaseReport>,
}

impl PhaseRunner {
    pub fn new(ledger: Arc<IoLedger>, model: TimeModel) -> Self {
        Self {
            ledger,
            model,
            clock: VirtualClock::new(),
            reports: Vec::new(),
        }
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Current simulated time in seconds (sum of foreground phases so far).
    pub fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// Execute `f` as a foreground phase with `host_threads` pinned threads.
    /// Returns `f`'s result; the phase duration is appended to the report
    /// list and added to the virtual clock.
    pub fn foreground<R>(&mut self, name: &str, host_threads: u32, f: impl FnOnce() -> R) -> R {
        let before = self.ledger.snapshot();
        let out = f();
        let work = self.ledger.snapshot().since(&before);
        let time = self.model.phase_time(&work, host_threads);
        self.clock.advance((time.elapsed_s * 1e9) as u64);
        self.reports.push(PhaseReport {
            name: name.to_string(),
            host_threads,
            work,
            time,
            background: false,
        });
        out
    }

    /// Execute `f` as a device background phase: its time is recorded but
    /// the virtual clock (host-visible time) does not advance.
    pub fn background<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let before = self.ledger.snapshot();
        let out = f();
        let work = self.ledger.snapshot().since(&before);
        let time = self.model.device_phase_time(&work);
        self.reports.push(PhaseReport {
            name: name.to_string(),
            host_threads: 0,
            work,
            time,
            background: true,
        });
        out
    }

    /// All phases recorded so far, in execution order.
    pub fn reports(&self) -> &[PhaseReport] {
        &self.reports
    }

    /// Duration of the most recent phase, in seconds.
    pub fn last_elapsed_s(&self) -> f64 {
        self.reports.last().map(|r| r.time.elapsed_s).unwrap_or(0.0)
    }

    /// Sum of foreground phase durations (what the host application saw).
    pub fn foreground_secs(&self) -> f64 {
        self.reports
            .iter()
            .filter(|r| !r.background)
            .map(|r| r.time.elapsed_s)
            .sum()
    }

    /// Sum of background phase durations (hidden from the application).
    pub fn background_secs(&self) -> f64 {
        self.reports
            .iter()
            .filter(|r| r.background)
            .map(|r| r.time.elapsed_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn runner() -> PhaseRunner {
        let ledger = Arc::new(IoLedger::new(16, 4096));
        PhaseRunner::new(ledger, TimeModel::new(SimConfig::default()))
    }

    #[test]
    fn foreground_advances_clock() {
        let mut r = runner();
        let ledger = Arc::clone(r.ledger());
        r.foreground("insert", 1, || ledger.charge_host_cpu(2e9));
        assert!((r.now_secs() - 2.0).abs() < 1e-6);
        assert_eq!(r.reports().len(), 1);
        assert!(!r.reports()[0].background);
        assert!((r.foreground_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn background_does_not_advance_clock() {
        let mut r = runner();
        let ledger = Arc::clone(r.ledger());
        r.background("compact", || ledger.charge_soc_cpu(4e9));
        assert_eq!(r.now_secs(), 0.0);
        assert!((r.background_secs() - 1.0).abs() < 1e-6); // 4 soc-s / 4 cores
        assert!(r.reports()[0].background);
    }

    #[test]
    fn phases_isolate_work() {
        let mut r = runner();
        let ledger = Arc::clone(r.ledger());
        r.foreground("a", 1, || ledger.charge_host_cpu(1e9));
        r.foreground("b", 1, || ledger.charge_host_cpu(3e9));
        assert_eq!(r.reports()[0].work.host_cpu_ns, 1_000_000_000);
        assert_eq!(r.reports()[1].work.host_cpu_ns, 3_000_000_000);
        assert!((r.last_elapsed_s() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn returns_closure_result() {
        let mut r = runner();
        let x = r.foreground("calc", 1, || 42);
        assert_eq!(x, 42);
        let y = r.background("calc2", || "ok");
        assert_eq!(y, "ok");
    }
}
