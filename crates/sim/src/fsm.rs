//! Declarative state-machine transition tables.
//!
//! The device's correctness argument leans on two small lifecycles — the
//! keyspace lifecycle (EMPTY → WRITABLE → COMPACTING → COMPACTED /
//! DEGRADED, Section IV of the paper) and the ZNS zone lifecycle (empty →
//! open → full → reset). PR 1 enforced them by scattered `match` guards;
//! this module turns each into a single declarative edge list that every
//! state mutation must clear, so an illegal edge is a typed error at the
//! mutation site instead of a latent corruption discovered three layers
//! later.
//!
//! Self-transitions (`from == to`) are always legal: they are idempotent
//! no-ops (e.g. `finish` on an already-Full zone) and listing them would
//! only bloat the tables.

use std::fmt;

/// A named transition table over a copyable state enum.
///
/// Tables are `'static` data — the edge list is the documentation — and
/// checking is O(edges), which is fine for lifecycles with < 10 states.
#[derive(Debug, Clone, Copy)]
pub struct TransitionTable<S: 'static> {
    /// Machine name used in error messages ("keyspace", "zone").
    pub machine: &'static str,
    /// Every legal `(from, to)` edge. Self-edges are implicit.
    pub edges: &'static [(S, S)],
}

impl<S: Copy + PartialEq + fmt::Debug> TransitionTable<S> {
    /// True when `from -> to` is a legal edge (or a no-op self-edge).
    pub fn is_legal(&self, from: S, to: S) -> bool {
        from == to || self.edges.iter().any(|&(f, t)| f == from && t == to)
    }

    /// Check an edge, returning a typed error naming the machine and the
    /// offending states.
    pub fn check(&self, from: S, to: S) -> Result<(), IllegalTransition> {
        if self.is_legal(from, to) {
            Ok(())
        } else {
            Err(IllegalTransition {
                machine: self.machine,
                from: format!("{from:?}"),
                to: format!("{to:?}"),
            })
        }
    }

    /// All states reachable from `from` in one step (diagnostics/docs).
    pub fn successors(&self, from: S) -> Vec<S> {
        self.edges
            .iter()
            .filter(|&&(f, _)| f == from)
            .map(|&(_, t)| t)
            .collect()
    }
}

/// A rejected state-machine edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    pub machine: &'static str,
    pub from: String,
    pub to: String,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal {} transition: {} -> {}",
            self.machine, self.from, self.to
        )
    }
}

impl std::error::Error for IllegalTransition {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Demo {
        A,
        B,
        C,
    }

    static DEMO: TransitionTable<Demo> = TransitionTable {
        machine: "demo",
        edges: &[(Demo::A, Demo::B), (Demo::B, Demo::C), (Demo::C, Demo::A)],
    };

    #[test]
    fn legal_edges_pass() {
        assert!(DEMO.check(Demo::A, Demo::B).is_ok());
        assert!(DEMO.check(Demo::B, Demo::C).is_ok());
    }

    #[test]
    fn self_edges_are_noops() {
        assert!(DEMO.check(Demo::B, Demo::B).is_ok());
    }

    #[test]
    fn illegal_edges_carry_context() {
        let err = DEMO.check(Demo::A, Demo::C).unwrap_err();
        assert_eq!(err.machine, "demo");
        assert_eq!(err.from, "A");
        assert_eq!(err.to, "C");
        assert!(err.to_string().contains("illegal demo transition"));
    }

    #[test]
    fn successors_enumerate_edges() {
        assert_eq!(DEMO.successors(Demo::A), vec![Demo::B]);
        assert!(DEMO.successors(Demo::B).contains(&Demo::C));
    }
}
