//! Simulation substrate for the KV-CSD reproduction.
//!
//! The reproduction executes every data-path algorithm for real (bytes are
//! actually stored, sorted, indexed and queried), but the hardware the paper
//! ran on — a Fidus Sidewinder-100 SoC, an E1.L NVMe ZNS SSD and a 32-core
//! EPYC host — is replaced by a *cost model*. This crate provides the three
//! pieces every other crate builds on:
//!
//! * [`IoLedger`] — a thread-safe set of counters recording every byte of
//!   NAND I/O, PCIe DMA traffic and CPU work performed by the real
//!   algorithms. Amplification and data-movement volumes are therefore
//!   *measured*, never assumed.
//! * [`HardwareSpec`] / [`CostModel`] — the configured constants (core
//!   counts, bandwidths, latencies) mirroring Table I of the paper.
//! * [`TimeModel`] — converts a ledger delta plus a phase's parallelism into
//!   simulated elapsed seconds, assuming pipelined overlap between
//!   independent resources (elapsed = max over bottlenecks).
//!
//! See `DESIGN.md` §2 for why this substitution preserves the paper's
//! result *shapes* even though absolute numbers are not comparable.

pub mod bus;
pub mod bytes;
pub mod clock;
pub mod config;
pub mod fault;
pub mod fsm;
pub mod ledger;
pub mod mc;
pub mod model;
pub mod perturb;
pub mod phase;
pub mod rng;
pub mod stats;
pub mod sync;

pub use bus::{BusConfig, BusResource, BusXmit};
pub use clock::{VirtualClock, WallTimer};
pub use config::{CostModel, HardwareSpec};
pub use fault::{
    BusFault, FaultDecision, FaultEvent, FaultInjector, FaultKind, FaultPlan, OpClass,
};
pub use fsm::{IllegalTransition, TransitionTable};
pub use ledger::{IoLedger, LedgerSnapshot};
pub use model::{PhaseTime, TimeModel};
pub use phase::PhaseRunner;
pub use rng::XorShift64;
