//! Thin synchronization wrappers with a `parking_lot`-style API over
//! `std::sync`, so the rest of the workspace builds without external
//! crates. `lock()` returns the guard directly; a poisoned lock is
//! recovered rather than propagated — the simulation's invariants are
//! re-checked by the callers, and propagating poison would only turn one
//! test panic into a cascade.
//!
//! # Lock-order (potential-deadlock) detection
//!
//! In debug/test builds every lock belongs to a *class* identified by its
//! creation site (the `file:line` of the `Mutex::new` call — all zone
//! locks created in one `Vec` initializer share a class, the keyspace
//! table is its own class, and so on). Each acquisition records
//! `held-class -> acquired-class` edges into a global lock-order graph;
//! if a *blocking* acquisition would close a cycle — some thread
//! previously took these classes in the opposite order — the detector
//! panics immediately with both conflicting acquisition contexts, instead
//! of letting the inversion sit silently until a production workload
//! interleaves into a real deadlock. This is the lockdep discipline:
//! *any* observed ordering cycle is a bug, whether or not this particular
//! run deadlocked.
//!
//! Notes on the model:
//! * classes, not instances: taking two locks of the *same* class (e.g.
//!   two zones) is not checked — the workspace never nests same-class
//!   locks, and `kvcsd-check` plus this detector keep it that way for
//!   cross-class order;
//! * `try_lock` cannot block, so it never *checks* for cycles itself, but
//!   it does record the hold and its `held -> acquired` edges (marked
//!   `via try_lock` in reports): a nesting order exercised through
//!   `try_lock` is still an order the code relies on — convert the try to
//!   a blocking lock, or retry it in a loop, and the inversion becomes a
//!   real deadlock — so the cycle is reported at the next blocking
//!   acquisition that closes it;
//! * guard drops pop the per-thread hold stack and perform the release
//!   half of the happens-before clock transfer (below);
//! * release builds compile all instrumentation out;
//! * `KVCSD_LOCK_ORDER=off` disables the detector at runtime (debug
//!   builds only, e.g. to let a test limp past a known cycle while
//!   bisecting).
//!
//! # Happens-before (data-race) detection
//!
//! Debug builds also carry a FastTrack-style vector-clock race detector
//! (`KVCSD_RACE=off` disables it, mirroring the lockdep switch). Every
//! thread keeps a vector clock; every `Mutex`/`RwLock` carries a pair of
//! release clocks (write releases and read releases are distinguished, so
//! two `RwLock` readers are not spuriously ordered with each other).
//! Acquiring a lock joins the appropriate release clocks into the
//! acquiring thread's clock; dropping a guard joins the thread's clock
//! into the lock and advances the thread's own epoch. [`spawn`]/
//! [`JoinHandle::join`] transfer clocks across fork and join the same
//! way.
//!
//! [`Shared<T>`] is the instrumented cell the detector actually watches:
//! * `read()` / `write()` are *race-checked* accesses. They record the
//!   accessing thread's epoch and panic — naming the cell's creation
//!   site and **both** conflicting access sites, in the same style as the
//!   lock-order report — when two accesses are unordered by
//!   happens-before. Use them for state whose ordering is supposed to
//!   come from elsewhere (an enclosing shim lock, `spawn`/`join`).
//! * `update()` / `get()` / `set()` are *self-synchronized* (the moral
//!   equivalent of an atomic RMW / load): they transfer clocks through
//!   the cell itself, so concurrent `update`/`get` traffic is ordered and
//!   clean by construction — but a stray `read()`/`write()` racing them
//!   is still caught. Use them for intentionally lock-free counters and
//!   flags. The `update` closure must not acquire other shim locks (these
//!   ops are leaves and skip the lock-order graph).
//!
//! # Controlled scheduling (model checking)
//!
//! Debug builds carry one more instrumentation layer: every shim
//! operation is a *scheduling point* for the `kvcsd-mc` model checker
//! (see [`crate::mc`] and `DESIGN.md` §15). Outside an mc execution the
//! hooks are a single relaxed atomic load; inside one, the accessing
//! thread declares its operation and parks until the explorer grants it,
//! which serializes the program and lets the checker enumerate
//! interleavings exhaustively. The race detector and lockdep stay fully
//! active under mc — each explored schedule is also race-checked.
//!
//! The canonical lock order of the device stack is documented in
//! `DESIGN.md` §9; the happens-before model and the `Shared<T>` migration
//! rules are in `DESIGN.md` §11.

use std::sync::{self, LockResult};

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(debug_assertions)]
mod lockorder {
    //! The global lock-order graph. Everything in here uses raw
    //! `std::sync` primitives — this module *is* the instrumentation and
    //! must not recurse into the shims it instruments.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock};

    /// How one `held -> acquired` edge was first observed.
    #[derive(Debug, Clone)]
    struct EdgeInfo {
        thread: String,
        /// Acquisition site of the lock that was already held.
        held_at: String,
        /// Acquisition site that added the edge while holding `held_at`.
        acquired_at: String,
        /// The acquisition that added the edge was a `try_lock`.
        via_try: bool,
    }

    #[derive(Debug, Default)]
    struct Graph {
        /// Creation site ("file:line:col") -> class id.
        class_ids: HashMap<String, u32>,
        /// Class id -> creation site.
        class_sites: Vec<String>,
        /// `from` class -> `to` class -> first observation.
        edges: HashMap<u32, HashMap<u32, EdgeInfo>>,
    }

    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();

    fn graph() -> &'static Mutex<Graph> {
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
        // Recover poison: a detector panic must not cascade into every
        // later acquisition in the process.
        graph().lock().unwrap_or_else(|p| p.into_inner())
    }

    thread_local! {
        /// Stack of (class, acquisition site) currently held by this thread.
        static HELD: RefCell<Vec<(u32, String)>> = const { RefCell::new(Vec::new()) };
    }

    fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            std::env::var("KVCSD_LOCK_ORDER")
                .map(|v| v != "off" && v != "0")
                .unwrap_or(true)
        })
    }

    fn site_of(loc: &Location<'_>) -> String {
        format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
    }

    /// Register (or look up) the class for a lock created at `loc`.
    pub(super) fn class_of(loc: &Location<'_>) -> u32 {
        let site = site_of(loc);
        let mut g = lock_graph();
        if let Some(&id) = g.class_ids.get(&site) {
            return id;
        }
        let id = g.class_sites.len() as u32;
        g.class_sites.push(site.clone());
        g.class_ids.insert(site, id);
        id
    }

    /// Is `to` reachable from `from` over recorded edges?
    fn reachable(g: &Graph, from: u32, to: u32) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.edges.get(&n) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }

    /// One shortest `from -> ... -> to` edge path (for the panic report).
    fn find_path(g: &Graph, from: u32, to: u32) -> Vec<(u32, u32)> {
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                break;
            }
            if let Some(next) = g.edges.get(&n) {
                for &m in next.keys() {
                    if seen.insert(m) {
                        prev.insert(m, n);
                        queue.push_back(m);
                    }
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let Some(&p) = prev.get(&cur) else {
                return Vec::new();
            };
            path.push((p, cur));
            cur = p;
        }
        path.reverse();
        path
    }

    /// Popping token for one recorded hold.
    #[derive(Debug)]
    pub(super) struct HeldToken {
        class: u32,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            let _ = HELD.try_with(|h| {
                let mut h = h.borrow_mut();
                if let Some(ix) = h.iter().rposition(|&(c, _)| c == self.class) {
                    h.remove(ix);
                }
            });
        }
    }

    /// Record an acquisition of `class` at `loc`. Edges from every held
    /// class are recorded for blocking and try acquisitions alike; only a
    /// `blocking` acquisition first verifies it cannot close an ordering
    /// cycle, panicking with both conflicting contexts if it would.
    pub(super) fn acquire(class: u32, loc: &Location<'_>, blocking: bool) -> Option<HeldToken> {
        if !enabled() {
            return None;
        }
        let acq_site = site_of(loc);
        let held: Vec<(u32, String)> = HELD.with(|h| h.borrow().clone());
        let mut cycle_msg = None;
        {
            let mut g = lock_graph();
            if blocking {
                for (held_class, held_site) in &held {
                    if *held_class == class {
                        continue;
                    }
                    if reachable(&g, class, *held_class) {
                        // Build the report, then panic outside the guard.
                        let mut msg = format!(
                            "lock-order cycle detected (potential deadlock)\n  thread '{}' is acquiring lock class created at {}\n    at {}\n  while holding lock class created at {}\n    acquired at {}\n  but the reverse order was previously observed:\n",
                            std::thread::current().name().unwrap_or("<unnamed>"),
                            g.class_sites[class as usize],
                            acq_site,
                            g.class_sites[*held_class as usize],
                            held_site,
                        );
                        for (f, t) in find_path(&g, class, *held_class) {
                            if let Some(info) = g.edges.get(&f).and_then(|m| m.get(&t)) {
                                msg.push_str(&format!(
                                    "    {} (held, acquired at {}) -> {} (acquired at {}{}) on thread '{}'\n",
                                    g.class_sites[f as usize],
                                    info.held_at,
                                    g.class_sites[t as usize],
                                    info.acquired_at,
                                    if info.via_try { " via try_lock" } else { "" },
                                    info.thread,
                                ));
                            }
                        }
                        cycle_msg = Some(msg);
                        break;
                    }
                }
            }
            if cycle_msg.is_none() {
                for (held_class, held_site) in &held {
                    if *held_class == class {
                        continue;
                    }
                    g.edges
                        .entry(*held_class)
                        .or_default()
                        .entry(class)
                        .or_insert_with(|| EdgeInfo {
                            thread: std::thread::current()
                                .name()
                                .unwrap_or("<unnamed>")
                                .to_string(),
                            held_at: held_site.clone(),
                            acquired_at: acq_site.clone(),
                            via_try: !blocking,
                        });
                }
            }
        }
        if let Some(msg) = cycle_msg {
            panic!("{msg}");
        }
        HELD.with(|h| h.borrow_mut().push((class, acq_site)));
        Some(HeldToken { class })
    }
}

#[cfg(debug_assertions)]
mod racedetect {
    //! FastTrack-style happens-before tracking: per-thread vector clocks,
    //! per-lock release clocks, per-`Shared`-cell access epochs. Like
    //! `lockorder`, this module uses raw `std::sync` primitives — it is
    //! the instrumentation and must not recurse into the shims.

    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    pub(super) fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            std::env::var("KVCSD_RACE")
                .map(|v| v != "off" && v != "0")
                .unwrap_or(true)
        })
    }

    fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn site_of(loc: &Location<'_>) -> String {
        format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
    }

    /// Vector clock: one epoch counter per thread id.
    #[derive(Clone, Debug, Default)]
    pub(super) struct VClock(Vec<u32>);

    impl VClock {
        fn get(&self, tid: usize) -> u32 {
            self.0.get(tid).copied().unwrap_or(0)
        }

        fn grow_to(&mut self, n: usize) {
            if self.0.len() < n {
                self.0.resize(n, 0);
            }
        }

        fn join(&mut self, other: &VClock) {
            self.grow_to(other.0.len());
            for (a, &b) in self.0.iter_mut().zip(&other.0) {
                if b > *a {
                    *a = b;
                }
            }
        }

        fn tick(&mut self, tid: usize) {
            self.grow_to(tid + 1);
            self.0[tid] += 1;
        }
    }

    static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

    /// Retired thread ids available for reuse, each with the epoch floor
    /// its next owner must start above. Without recycling, an mc run
    /// spawning a few threads per execution across tens of thousands of
    /// executions would grow every vector clock to tens of thousands of
    /// components. A *joined* thread's id can be reused safely: the
    /// joiner adopted its final clock, so every recorded access of the
    /// old owner is in the reuser's past once the floor is respected.
    /// (The known false negative: a reused tid makes the *old* owner's
    /// accesses look same-thread to the new one. That pair is already
    /// ordered through the join for every joiner-descended thread, which
    /// covers all mc executions; only exotic detached-sibling patterns
    /// lose a report.)
    fn free_tids() -> &'static Mutex<Vec<(usize, u32)>> {
        static FREE: OnceLock<Mutex<Vec<(usize, u32)>>> = OnceLock::new();
        FREE.get_or_init(|| Mutex::new(Vec::new()))
    }

    struct ThreadState {
        tid: usize,
        name: String,
        clock: VClock,
    }

    thread_local! {
        static THREAD: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
    }

    /// Run `f` against this thread's clock state; `None` during thread
    /// teardown (TLS already destroyed — e.g. a guard dropped from
    /// another thread-local's destructor).
    fn try_with_thread<R>(f: impl FnOnce(&mut ThreadState) -> R) -> Option<R> {
        THREAD
            .try_with(|slot| {
                let mut slot = slot.borrow_mut();
                let st = slot.get_or_insert_with(|| {
                    let name = std::thread::current()
                        .name()
                        .unwrap_or("<unnamed>")
                        .to_string();
                    let mut clock = VClock::default();
                    let tid = match relock(free_tids()).pop() {
                        Some((tid, floor)) => {
                            clock.grow_to(tid + 1);
                            clock.0[tid] = floor;
                            tid
                        }
                        None => NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    };
                    // Start one above the floor (epoch 1 for a fresh id)
                    // so a recorded access is always distinguishable from
                    // "never seen this thread" (0) and never collides
                    // with the previous owner's epochs.
                    clock.tick(tid);
                    ThreadState { tid, name, clock }
                });
                f(st)
            })
            .ok()
    }

    /// Release clocks for one lock (or one `Shared` cell): `.0` is joined
    /// by write releases, `.1` by read releases. Read acquisitions join
    /// only the write clock, so concurrent readers are not spuriously
    /// ordered with each other; write acquisitions join both.
    #[derive(Debug)]
    pub(super) struct LockClocks(Mutex<(VClock, VClock)>);

    impl LockClocks {
        pub(super) fn new() -> Self {
            Self(Mutex::new((VClock::default(), VClock::default())))
        }

        pub(super) fn acquire_read(&self) {
            if !enabled() {
                return;
            }
            let _ = try_with_thread(|t| {
                let pair = relock(&self.0);
                t.clock.join(&pair.0);
            });
        }

        pub(super) fn acquire_write(&self) {
            if !enabled() {
                return;
            }
            let _ = try_with_thread(|t| {
                let pair = relock(&self.0);
                t.clock.join(&pair.0);
                t.clock.join(&pair.1);
            });
        }

        pub(super) fn release_read(&self) {
            if !enabled() {
                return;
            }
            let _ = try_with_thread(|t| {
                relock(&self.0).1.join(&t.clock);
                t.clock.tick(t.tid);
            });
        }

        pub(super) fn release_write(&self) {
            if !enabled() {
                return;
            }
            let _ = try_with_thread(|t| {
                relock(&self.0).0.join(&t.clock);
                t.clock.tick(t.tid);
            });
        }
    }

    /// One recorded access to a `Shared` cell.
    #[derive(Clone, Debug)]
    struct Access {
        tid: usize,
        clk: u32,
        site: String,
        thread: String,
    }

    #[derive(Debug)]
    struct VarState {
        write: Option<Access>,
        reads: Vec<Access>,
    }

    /// Per-`Shared` epoch state: the last write, plus the last read per
    /// thread since that write.
    #[derive(Debug)]
    pub(super) struct RaceCell {
        created_at: String,
        state: Mutex<VarState>,
    }

    impl RaceCell {
        pub(super) fn new(created_at: &Location<'_>) -> Self {
            Self {
                created_at: site_of(created_at),
                state: Mutex::new(VarState {
                    write: None,
                    reads: Vec::new(),
                }),
            }
        }

        fn report(
            &self,
            kind: &str,
            thread: &str,
            loc: &Location<'_>,
            prev_kind: &str,
            prev: &Access,
        ) -> String {
            format!(
                "data race detected (unordered accesses to a Shared cell)\n  cell created at {}\n  {} by thread '{}' at {}\n  conflicts with an earlier {} by thread '{}' at {}\n  no happens-before edge orders these accesses: protect both with one\n  kvcsd_sim::sync lock, use Shared::update/get for lock-free counters,\n  or transfer ordering via kvcsd_sim::sync::spawn/join\n  (KVCSD_RACE=off disables the detector)",
                self.created_at,
                kind,
                thread,
                site_of(loc),
                prev_kind,
                prev.thread,
                prev.site,
            )
        }

        /// An access already recorded at `prev` races the current thread
        /// unless it is in the thread's happens-before past.
        fn races(t: &ThreadState, prev: &Access) -> bool {
            prev.tid != t.tid && prev.clk > t.clock.get(prev.tid)
        }

        pub(super) fn on_read(&self, loc: &Location<'_>) {
            if !enabled() {
                return;
            }
            let msg = try_with_thread(|t| {
                let mut v = relock(&self.state);
                let msg = v
                    .write
                    .as_ref()
                    .filter(|w| Self::races(t, w))
                    .map(|w| self.report("read", &t.name, loc, "write", w));
                let a = Access {
                    tid: t.tid,
                    clk: t.clock.get(t.tid),
                    site: site_of(loc),
                    thread: t.name.clone(),
                };
                if let Some(r) = v.reads.iter_mut().find(|r| r.tid == t.tid) {
                    *r = a;
                } else {
                    v.reads.push(a);
                }
                msg
            })
            .flatten();
            if let Some(m) = msg {
                panic!("{m}");
            }
        }

        pub(super) fn on_write(&self, loc: &Location<'_>) {
            if !enabled() {
                return;
            }
            let msg = try_with_thread(|t| {
                let mut v = relock(&self.state);
                let msg = v
                    .write
                    .as_ref()
                    .filter(|w| Self::races(t, w))
                    .map(|w| self.report("write", &t.name, loc, "write", w))
                    .or_else(|| {
                        v.reads
                            .iter()
                            .find(|r| Self::races(t, r))
                            .map(|r| self.report("write", &t.name, loc, "read", r))
                    });
                v.reads.clear();
                v.write = Some(Access {
                    tid: t.tid,
                    clk: t.clock.get(t.tid),
                    site: site_of(loc),
                    thread: t.name.clone(),
                });
                msg
            })
            .flatten();
            if let Some(m) = msg {
                panic!("{m}");
            }
        }
    }

    /// Snapshot the parent's clock for a child thread, then advance the
    /// parent so its post-fork accesses are unordered with the child.
    pub(super) fn fork() -> VClock {
        if !enabled() {
            return VClock::default();
        }
        try_with_thread(|t| {
            let snap = t.clock.clone();
            t.clock.tick(t.tid);
            snap
        })
        .unwrap_or_default()
    }

    /// Join a snapshot (a parent's fork clock, or a finished child's
    /// final clock) into this thread's clock.
    pub(super) fn adopt(c: &VClock) {
        if !enabled() {
            return;
        }
        let _ = try_with_thread(|t| t.clock.join(c));
    }

    /// This thread's id and final clock, for the joiner to adopt (and to
    /// retire the id); `None` when the detector is disabled.
    pub(super) fn export_final() -> Option<(usize, VClock)> {
        if !enabled() {
            return None;
        }
        try_with_thread(|t| (t.tid, t.clock.clone()))
    }

    /// Return a joined thread's id to the free list. Callers must have
    /// adopted `final_clock` first — that join edge is what makes the
    /// reuse sound.
    pub(super) fn retire(tid: usize, final_clock: &VClock) {
        if !enabled() {
            return;
        }
        relock(free_tids()).push((tid, final_clock.get(tid)));
    }
}

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: u32,
    #[cfg(debug_assertions)]
    clocks: racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: crate::mc::McSlot,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]/[`Mutex::try_lock`]; releases the
/// lock (popping the lock-order stack and publishing the release clock
/// in debug builds) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    clocks: &'a racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: &'a crate::mc::McSlot,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
    inner: sync::MutexGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Runs before the field drops release the underlying lock, so the
        // release clock is published before the next acquirer can enter.
        self.clocks.release_write();
        crate::mc::release_sync(self.mc, crate::mc::Access::Exclusive);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            class: lockorder::class_of(std::panic::Location::caller()),
            #[cfg(debug_assertions)]
            clocks: racedetect::LockClocks::new(),
            #[cfg(debug_assertions)]
            mc: crate::mc::McSlot::new(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::MutexLock);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        let inner = recover(self.inner.lock());
        #[cfg(debug_assertions)]
        self.clocks.acquire_write();
        MutexGuard {
            #[cfg(debug_assertions)]
            clocks: &self.clocks,
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::MutexTry);
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        crate::mc::try_acquired(&self.mc);
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), false);
        #[cfg(debug_assertions)]
        self.clocks.acquire_write();
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            clocks: &self.clocks,
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: u32,
    #[cfg(debug_assertions)]
    clocks: racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: crate::mc::McSlot,
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    clocks: &'a racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: &'a crate::mc::McSlot,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
    inner: sync::RwLockReadGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.clocks.release_read();
        crate::mc::release_sync(self.mc, crate::mc::Access::Shared);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    clocks: &'a racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: &'a crate::mc::McSlot,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.clocks.release_write();
        crate::mc::release_sync(self.mc, crate::mc::Access::Exclusive);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            class: lockorder::class_of(std::panic::Location::caller()),
            #[cfg(debug_assertions)]
            clocks: racedetect::LockClocks::new(),
            #[cfg(debug_assertions)]
            mc: crate::mc::McSlot::new(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::RwRead);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        let inner = recover(self.inner.read());
        #[cfg(debug_assertions)]
        self.clocks.acquire_read();
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            clocks: &self.clocks,
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::RwWrite);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        let inner = recover(self.inner.write());
        #[cfg(debug_assertions)]
        self.clocks.acquire_write();
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            clocks: &self.clocks,
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// Instrumented shared cell watched by the happens-before race detector.
///
/// Two access disciplines, chosen per call site (see the module docs):
///
/// * [`read`](Shared::read)/[`write`](Shared::write) — race-checked.
///   Ordering must come from elsewhere (an enclosing shim lock,
///   [`spawn`]/[`JoinHandle::join`]); unordered access pairs panic with
///   both sites named.
/// * [`update`](Shared::update)/[`get`](Shared::get)/[`set`](Shared::set)
///   — self-synchronized, the atomic-RMW analogue for lock-free counters
///   and flags. Clean by construction against each other, but still
///   checked against stray `read()`/`write()` accesses.
///
/// Backed by a real `std::sync::RwLock`, so even an undetected race (or a
/// release build) can never produce a torn value — detection is purely an
/// epoch-bookkeeping layer on top.
pub struct Shared<T> {
    #[cfg(debug_assertions)]
    class: u32,
    #[cfg(debug_assertions)]
    cell: racedetect::RaceCell,
    #[cfg(debug_assertions)]
    clocks: racedetect::LockClocks,
    #[cfg(debug_assertions)]
    mc: crate::mc::McSlot,
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`Shared::read`].
pub struct SharedReadGuard<'a, T> {
    #[cfg(debug_assertions)]
    mc: &'a crate::mc::McSlot,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
    inner: sync::RwLockReadGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T> Drop for SharedReadGuard<'_, T> {
    fn drop(&mut self) {
        crate::mc::release_sync(self.mc, crate::mc::Access::Shared);
    }
}

impl<T> std::ops::Deref for SharedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`Shared::write`].
pub struct SharedWriteGuard<'a, T> {
    #[cfg(debug_assertions)]
    mc: &'a crate::mc::McSlot,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T> Drop for SharedWriteGuard<'_, T> {
    fn drop(&mut self) {
        crate::mc::release_sync(self.mc, crate::mc::Access::Exclusive);
    }
}

impl<T> std::ops::Deref for SharedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for SharedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Shared<T> {
    /// The creation site becomes the cell's identity in race reports (and
    /// its lock-order class for `read`/`write` guards).
    #[track_caller]
    pub fn new(value: T) -> Self {
        #[cfg(debug_assertions)]
        let loc = std::panic::Location::caller();
        Self {
            #[cfg(debug_assertions)]
            class: lockorder::class_of(loc),
            #[cfg(debug_assertions)]
            cell: racedetect::RaceCell::new(loc),
            #[cfg(debug_assertions)]
            clocks: racedetect::LockClocks::new(),
            #[cfg(debug_assertions)]
            mc: crate::mc::McSlot::new(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }

    /// Exclusive access through `&mut self` is ordered by ownership; it
    /// is neither recorded nor checked.
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }

    /// Race-checked shared read; the ordering against writes must come
    /// from an enclosing lock or a fork/join edge.
    #[track_caller]
    pub fn read(&self) -> SharedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::SharedRead);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        let inner = recover(self.inner.read());
        #[cfg(debug_assertions)]
        self.cell.on_read(std::panic::Location::caller());
        SharedReadGuard {
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        }
    }

    /// Race-checked exclusive write; panics with both conflicting sites
    /// if any unordered access was recorded.
    #[track_caller]
    pub fn write(&self) -> SharedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::SharedWrite);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        let inner = recover(self.inner.write());
        #[cfg(debug_assertions)]
        self.cell.on_write(std::panic::Location::caller());
        SharedWriteGuard {
            #[cfg(debug_assertions)]
            mc: &self.mc,
            #[cfg(debug_assertions)]
            _token: token,
            inner,
        }
    }

    /// Self-synchronized read-modify-write (the atomic-RMW analogue).
    /// The closure must not acquire other shim locks: `update` is a leaf
    /// operation and does not participate in the lock-order graph.
    #[track_caller]
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::SharedRmw);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        let mut g = recover(self.inner.write());
        #[cfg(debug_assertions)]
        {
            self.clocks.acquire_write();
            self.cell.on_write(std::panic::Location::caller());
        }
        let out = f(&mut g);
        #[cfg(debug_assertions)]
        {
            self.clocks.release_write();
            crate::mc::release_sync(&self.mc, crate::mc::Access::Exclusive);
        }
        out
    }

    /// Self-synchronized store.
    #[track_caller]
    pub fn set(&self, value: T) {
        self.update(|v| *v = value);
    }

    /// Self-synchronized load.
    #[track_caller]
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        #[cfg(debug_assertions)]
        crate::mc::point_sync(&self.mc, crate::mc::OpKind::SharedGet);
        #[cfg(debug_assertions)]
        crate::perturb::maybe_yield();
        let g = recover(self.inner.read());
        #[cfg(debug_assertions)]
        {
            self.clocks.acquire_read();
            self.cell.on_read(std::panic::Location::caller());
            self.clocks.release_read();
            crate::mc::release_sync(&self.mc, crate::mc::Access::Shared);
        }
        *g
    }
}

impl<T: Default> Default for Shared<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("Shared").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("Shared").field(&&*p.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("Shared(<locked>)"),
        }
    }
}

/// [`std::thread::spawn`] with fork edges for the race detector: the
/// child starts ordered after everything the parent did before the spawn.
/// Under an mc execution the child is also *registered* with the
/// controlled scheduler before it starts, so its first action is a
/// scheduling point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(debug_assertions)]
    {
        spawn_impl(crate::mc::register_spawn(), f)
    }
    #[cfg(not(debug_assertions))]
    {
        JoinHandle {
            inner: std::thread::spawn(f),
        }
    }
}

#[cfg(debug_assertions)]
fn spawn_impl<F, T>(tok: Option<crate::mc::SpawnToken>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let mc_child = tok.as_ref().map(|t| t.ids());
    let snapshot = racedetect::fork();
    let slot = std::sync::Arc::new(sync::Mutex::new(None));
    let slot2 = std::sync::Arc::clone(&slot);
    let inner = std::thread::spawn(move || {
        // Declared first so it drops last: the final clock is exported
        // before the scheduler marks this thread exited.
        let _scope = tok.map(crate::mc::enter_thread);
        racedetect::adopt(&snapshot);
        let out = f();
        *recover(slot2.lock()) = racedetect::export_final();
        out
    });
    JoinHandle {
        inner,
        clock: slot,
        mc_child,
    }
}

/// Spawn an mc execution's root thread under an already-registered
/// scheduler identity (see [`crate::mc::Execution::start`]).
#[cfg(debug_assertions)]
pub(crate) fn spawn_root<F>(tok: crate::mc::SpawnToken, f: F) -> JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    spawn_impl(Some(tok), f)
}

/// Handle returned by [`spawn`]; [`join`](JoinHandle::join) adds the join
/// edge, ordering the parent after everything the child did.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(debug_assertions)]
    clock: std::sync::Arc<sync::Mutex<Option<(usize, racedetect::VClock)>>>,
    /// The child's controlled-scheduler identity, when it was spawned
    /// under an mc execution.
    #[cfg(debug_assertions)]
    mc_child: Option<(u64, u32)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        // Under mc, joining is a scheduling point that only becomes
        // enabled once the child has exited — so the real join below
        // cannot block a granted thread.
        #[cfg(debug_assertions)]
        crate::mc::point_join(self.mc_child);
        let out = self.inner.join();
        #[cfg(debug_assertions)]
        if let Some((tid, c)) = recover(self.clock.lock()).take() {
            racedetect::adopt(&c);
            racedetect::retire(tid, &c);
        }
        out
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }

    pub fn thread(&self) -> &std::thread::Thread {
        self.inner.thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn shared_single_thread() {
        let s = Shared::new(1u32);
        *s.write() += 1;
        assert_eq!(*s.read(), 2);
        s.update(|v| *v *= 10);
        assert_eq!(s.get(), 20);
        s.set(3);
        assert_eq!(s.into_inner(), 3);
    }

    #[test]
    fn shared_update_get_is_clean_across_threads() {
        // The sanctioned lock-free-counter pattern: plain std threads, no
        // locks, no fork/join edges visible to the detector — update/get
        // self-synchronize through the cell and must never be reported.
        let s = Arc::new(Shared::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        s.update(|v| *v += 1);
                        let _ = s.get();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("update/get must not race");
        }
        assert_eq!(s.get(), 2000);
    }

    #[test]
    fn spawn_join_transfers_ordering() {
        // write() before spawn, read() in the child, write() after join:
        // every pair is ordered by the fork/join edges, so the checked
        // accessors must stay silent.
        let s = Arc::new(Shared::new(0u32));
        *s.write() = 1;
        let s2 = Arc::clone(&s);
        let h = spawn(move || {
            assert_eq!(*s2.read(), 1);
            *s2.write() = 2;
        });
        h.join().expect("child must not race");
        assert_eq!(*s.read(), 2);
        *s.write() = 3;
    }

    #[cfg(debug_assertions)]
    mod order {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_message(r: std::thread::Result<()>) -> String {
            match r {
                Ok(()) => String::new(),
                Err(p) => p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default(),
            }
        }

        #[test]
        fn inverted_lock_pair_is_detected() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            // Establish the order a -> b.
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // The inversion b -> a must panic even though no thread is
            // actually deadlocked right now.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }));
            let msg = panic_message(r.map(|_| ()));
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }

        #[test]
        fn inversion_across_threads_is_detected() {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            // Thread 1 records a -> b and exits.
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join()
            .expect("ordering thread must not panic");
            // Thread 2 attempts b -> a: cycle.
            let r = std::thread::Builder::new()
                .name("inverter".into())
                .spawn(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                })
                .expect("spawn")
                .join();
            let msg = panic_message(r);
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }

        #[test]
        fn consistent_order_is_silent() {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                handles.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ga = a.lock();
                        let _gb = b.lock();
                    }
                }));
            }
            for h in handles {
                h.join().expect("consistent order must never panic");
            }
        }

        #[test]
        fn try_lock_does_not_create_false_cycles() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // try_lock in the reverse order cannot block, so it must not
            // be reported as a potential deadlock at the try itself.
            let _gb = b.lock();
            let ga = a.try_lock();
            assert!(ga.is_some());
        }

        #[test]
        fn try_lock_ordering_feeds_the_graph() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            // Establish a -> b where the inner acquisition is a try_lock:
            // the edge must still be recorded.
            {
                let _ga = a.lock();
                let _gb = b.try_lock().expect("uncontended");
            }
            // A blocking inversion closes the cycle and must be reported,
            // with the try_lock provenance named in the report.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }));
            let msg = panic_message(r.map(|_| ()));
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
            assert!(
                msg.contains("via try_lock"),
                "expected try_lock provenance in the report, got: {msg:?}"
            );
        }

        #[test]
        fn rwlock_participates_in_ordering() {
            let a = RwLock::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.read();
                let _gb = b.lock();
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.write();
            }));
            let msg = panic_message(r.map(|_| ()));
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }
    }

    #[cfg(debug_assertions)]
    mod race {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn unordered_write_write_is_detected() {
            let s = Arc::new(Shared::new(0u32));
            let s2 = Arc::clone(&s);
            let (tx, rx) = std::sync::mpsc::channel();
            // A raw std thread: the detector sees no fork edge, and the
            // mpsc signal below is deliberately invisible to it too, so
            // the two write() calls are unordered by anything it trusts.
            let h = std::thread::Builder::new()
                .name("racer".into())
                .spawn(move || {
                    *s2.write() = 1;
                    tx.send(()).expect("send");
                })
                .expect("spawn");
            rx.recv().expect("recv");
            let r = catch_unwind(AssertUnwindSafe(|| {
                *s.write() = 2;
            }));
            h.join().expect("racer itself must not panic");
            let msg = match r {
                Ok(()) => String::new(),
                Err(p) => p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|x| x.to_string()))
                    .unwrap_or_default(),
            };
            assert!(
                msg.contains("data race detected"),
                "expected a race panic, got: {msg:?}"
            );
            assert!(
                msg.contains("thread 'racer'"),
                "expected the racing thread to be named, got: {msg:?}"
            );
        }

        #[test]
        fn lock_protected_twin_is_silent() {
            // Same shape as above, but both writes happen under one shim
            // mutex: the release->acquire clock transfer orders them.
            let s = Arc::new(Shared::new(0u32));
            let m = Arc::new(Mutex::new(()));
            let (s2, m2) = (Arc::clone(&s), Arc::clone(&m));
            let (tx, rx) = std::sync::mpsc::channel();
            let h = std::thread::spawn(move || {
                {
                    let _g = m2.lock();
                    *s2.write() = 1;
                }
                tx.send(()).expect("send");
            });
            rx.recv().expect("recv");
            {
                let _g = m.lock();
                *s.write() = 2;
            }
            h.join().expect("lock-protected writes must not race");
            assert_eq!(*s.read(), 2);
        }
    }
}
