//! Thin synchronization wrappers with a `parking_lot`-style API over
//! `std::sync`, so the rest of the workspace builds without external
//! crates. `lock()` returns the guard directly; a poisoned lock is
//! recovered rather than propagated — the simulation's invariants are
//! re-checked by the callers, and propagating poison would only turn one
//! test panic into a cascade.
//!
//! # Lock-order (potential-deadlock) detection
//!
//! In debug/test builds every lock belongs to a *class* identified by its
//! creation site (the `file:line` of the `Mutex::new` call — all zone
//! locks created in one `Vec` initializer share a class, the keyspace
//! table is its own class, and so on). Each blocking acquisition records
//! `held-class -> acquired-class` edges into a global lock-order graph;
//! if an acquisition would close a cycle — some thread previously took
//! these classes in the opposite order — the detector panics immediately
//! with both conflicting acquisition contexts, instead of letting the
//! inversion sit silently until a production workload interleaves into a
//! real deadlock. This is the lockdep discipline: *any* observed ordering
//! cycle is a bug, whether or not this particular run deadlocked.
//!
//! Notes on the model:
//! * classes, not instances: taking two locks of the *same* class (e.g.
//!   two zones) is not checked — the workspace never nests same-class
//!   locks, and `kvcsd-check` plus this detector keep it that way for
//!   cross-class order;
//! * `try_lock` cannot block, so it records the hold (later blocking
//!   acquisitions see it) but neither adds edges nor checks cycles;
//! * release builds compile all instrumentation out;
//! * `KVCSD_LOCK_ORDER=off` disables the detector at runtime (debug
//!   builds only, e.g. to let a test limp past a known cycle while
//!   bisecting).
//!
//! The canonical lock order of the device stack is documented in
//! `DESIGN.md` §9.

use std::sync::{self, LockResult};

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(debug_assertions)]
mod lockorder {
    //! The global lock-order graph. Everything in here uses raw
    //! `std::sync` primitives — this module *is* the instrumentation and
    //! must not recurse into the shims it instruments.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock};

    /// How one `held -> acquired` edge was first observed.
    #[derive(Debug, Clone)]
    struct EdgeInfo {
        thread: String,
        /// Acquisition site of the lock that was already held.
        held_at: String,
        /// Acquisition site that added the edge while holding `held_at`.
        acquired_at: String,
    }

    #[derive(Debug, Default)]
    struct Graph {
        /// Creation site ("file:line:col") -> class id.
        class_ids: HashMap<String, u32>,
        /// Class id -> creation site.
        class_sites: Vec<String>,
        /// `from` class -> `to` class -> first observation.
        edges: HashMap<u32, HashMap<u32, EdgeInfo>>,
    }

    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();

    fn graph() -> &'static Mutex<Graph> {
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
        // Recover poison: a detector panic must not cascade into every
        // later acquisition in the process.
        graph().lock().unwrap_or_else(|p| p.into_inner())
    }

    thread_local! {
        /// Stack of (class, acquisition site) currently held by this thread.
        static HELD: RefCell<Vec<(u32, String)>> = const { RefCell::new(Vec::new()) };
    }

    fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            std::env::var("KVCSD_LOCK_ORDER")
                .map(|v| v != "off" && v != "0")
                .unwrap_or(true)
        })
    }

    fn site_of(loc: &Location<'_>) -> String {
        format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
    }

    /// Register (or look up) the class for a lock created at `loc`.
    pub(super) fn class_of(loc: &Location<'_>) -> u32 {
        let site = site_of(loc);
        let mut g = lock_graph();
        if let Some(&id) = g.class_ids.get(&site) {
            return id;
        }
        let id = g.class_sites.len() as u32;
        g.class_sites.push(site.clone());
        g.class_ids.insert(site, id);
        id
    }

    /// Is `to` reachable from `from` over recorded edges?
    fn reachable(g: &Graph, from: u32, to: u32) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.edges.get(&n) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }

    /// One shortest `from -> ... -> to` edge path (for the panic report).
    fn find_path(g: &Graph, from: u32, to: u32) -> Vec<(u32, u32)> {
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                break;
            }
            if let Some(next) = g.edges.get(&n) {
                for &m in next.keys() {
                    if seen.insert(m) {
                        prev.insert(m, n);
                        queue.push_back(m);
                    }
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let Some(&p) = prev.get(&cur) else {
                return Vec::new();
            };
            path.push((p, cur));
            cur = p;
        }
        path.reverse();
        path
    }

    /// Popping token for one recorded hold.
    #[derive(Debug)]
    pub(super) struct HeldToken {
        class: u32,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            let _ = HELD.try_with(|h| {
                let mut h = h.borrow_mut();
                if let Some(ix) = h.iter().rposition(|&(c, _)| c == self.class) {
                    h.remove(ix);
                }
            });
        }
    }

    /// Record an acquisition of `class` at `loc`. When `blocking`, first
    /// verify the acquisition cannot close an ordering cycle, panicking
    /// with both conflicting contexts if it would.
    pub(super) fn acquire(class: u32, loc: &Location<'_>, blocking: bool) -> Option<HeldToken> {
        if !enabled() {
            return None;
        }
        let acq_site = site_of(loc);
        if blocking {
            let held: Vec<(u32, String)> = HELD.with(|h| h.borrow().clone());
            let mut cycle_msg = None;
            {
                let mut g = lock_graph();
                for (held_class, held_site) in &held {
                    if *held_class == class {
                        continue;
                    }
                    if reachable(&g, class, *held_class) {
                        // Build the report, then panic outside the guard.
                        let mut msg = format!(
                            "lock-order cycle detected (potential deadlock)\n  thread '{}' is acquiring lock class created at {}\n    at {}\n  while holding lock class created at {}\n    acquired at {}\n  but the reverse order was previously observed:\n",
                            std::thread::current().name().unwrap_or("<unnamed>"),
                            g.class_sites[class as usize],
                            acq_site,
                            g.class_sites[*held_class as usize],
                            held_site,
                        );
                        for (f, t) in find_path(&g, class, *held_class) {
                            if let Some(info) = g.edges.get(&f).and_then(|m| m.get(&t)) {
                                msg.push_str(&format!(
                                    "    {} (held, acquired at {}) -> {} (acquired at {}) on thread '{}'\n",
                                    g.class_sites[f as usize],
                                    info.held_at,
                                    g.class_sites[t as usize],
                                    info.acquired_at,
                                    info.thread,
                                ));
                            }
                        }
                        cycle_msg = Some(msg);
                        break;
                    }
                }
                if cycle_msg.is_none() {
                    for (held_class, held_site) in &held {
                        if *held_class == class {
                            continue;
                        }
                        g.edges
                            .entry(*held_class)
                            .or_default()
                            .entry(class)
                            .or_insert_with(|| EdgeInfo {
                                thread: std::thread::current()
                                    .name()
                                    .unwrap_or("<unnamed>")
                                    .to_string(),
                                held_at: held_site.clone(),
                                acquired_at: acq_site.clone(),
                            });
                    }
                }
            }
            if let Some(msg) = cycle_msg {
                panic!("{msg}");
            }
        }
        HELD.with(|h| h.borrow_mut().push((class, acq_site)));
        Some(HeldToken { class })
    }
}

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: u32,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]/[`Mutex::try_lock`]; releases the
/// lock (and pops the lock-order stack in debug builds) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            class: lockorder::class_of(std::panic::Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        MutexGuard {
            inner: recover(self.inner.lock()),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), false);
        Some(MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: token,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    class: u32,
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: Option<lockorder::HeldToken>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            class: lockorder::class_of(std::panic::Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        RwLockReadGuard {
            inner: recover(self.inner.read()),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = lockorder::acquire(self.class, std::panic::Location::caller(), true);
        RwLockWriteGuard {
            inner: recover(self.inner.write()),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[cfg(debug_assertions)]
    mod order {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_message(r: std::thread::Result<()>) -> String {
            match r {
                Ok(()) => String::new(),
                Err(p) => p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default(),
            }
        }

        #[test]
        fn inverted_lock_pair_is_detected() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            // Establish the order a -> b.
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // The inversion b -> a must panic even though no thread is
            // actually deadlocked right now.
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }));
            let msg = panic_message(r.map(|_| ()));
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }

        #[test]
        fn inversion_across_threads_is_detected() {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            // Thread 1 records a -> b and exits.
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join()
            .expect("ordering thread must not panic");
            // Thread 2 attempts b -> a: cycle.
            let r = std::thread::Builder::new()
                .name("inverter".into())
                .spawn(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                })
                .expect("spawn")
                .join();
            let msg = panic_message(r);
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }

        #[test]
        fn consistent_order_is_silent() {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                handles.push(std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ga = a.lock();
                        let _gb = b.lock();
                    }
                }));
            }
            for h in handles {
                h.join().expect("consistent order must never panic");
            }
        }

        #[test]
        fn try_lock_does_not_create_false_cycles() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // try_lock in the reverse order cannot block, so it must not
            // be reported as a potential deadlock.
            let _gb = b.lock();
            let ga = a.try_lock();
            assert!(ga.is_some());
        }

        #[test]
        fn rwlock_participates_in_ordering() {
            let a = RwLock::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.read();
                let _gb = b.lock();
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.write();
            }));
            let msg = panic_message(r.map(|_| ()));
            assert!(
                msg.contains("lock-order cycle"),
                "expected a lock-order panic, got: {msg:?}"
            );
        }
    }
}
