//! Thin synchronization wrappers with a `parking_lot`-style API over
//! `std::sync`, so the rest of the workspace builds without external
//! crates. `lock()` returns the guard directly; a poisoned lock is
//! recovered rather than propagated — the simulation's invariants are
//! re-checked by the callers, and propagating poison would only turn one
//! test panic into a cascade.

use std::sync::{self, LockResult};

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
