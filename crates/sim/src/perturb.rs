//! Seeded schedule perturbation for concurrency tests.
//!
//! The OS scheduler explores very few interleavings of a multi-threaded
//! test: whichever thread wins each lock tends to keep winning, and CI
//! machines are depressingly consistent about it. This module injects
//! `thread::yield_now()` bursts at every shim-lock acquisition point
//! (`kvcsd_sim::sync` calls [`maybe_yield`] in debug builds), driven by a
//! deterministic per-seed decision stream, so running the same test under
//! two seeds exercises two genuinely different interleavings — and the
//! happens-before race detector (`sync.rs`) gets to observe them.
//!
//! # Determinism
//!
//! Perturbation is off unless a seed is installed, either via the
//! `KVCSD_PERTURB` environment variable or [`install_seed`]. Each thread
//! is assigned a *lane* (a small ordinal, in the order threads first hit
//! a yield point) and draws its decisions from
//! [`PerturbSchedule::new(seed, lane)`](PerturbSchedule::new): the
//! decision sequence for a lane is a pure function of `(seed, lane)`,
//! which is what the determinism self-tests pin down. (Which OS thread
//! lands in which lane still depends on scheduling — determinism is per
//! lane, not per thread id.)
//!
//! Yields are charged to the installed [`VirtualClock`] (~100 ns each,
//! see [`install_clock`]), never slept: perturbation must not distort the
//! virtual-time results a test asserts on any more than any other
//! simulated CPU work does.
//!
//! Everything here uses `OnceLock`/atomics/thread-locals only — it is
//! called from inside the `sync` shims and must not recurse into them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::clock::VirtualClock;
use crate::rng::XorShift64;

/// Virtual nanoseconds charged per injected yield.
const YIELD_COST_NS: u64 = 100;

/// Probability of yielding at a given point is 1 in `YIELD_ONE_IN`.
const YIELD_ONE_IN: u64 = 16;

/// Seed installed programmatically; 0 means "not installed".
static OVERRIDE_SEED: AtomicU64 = AtomicU64::new(0);

/// Seed parsed (once) from `KVCSD_PERTURB`; 0 / unset / garbage = off.
static ENV_SEED: OnceLock<u64> = OnceLock::new();

/// Clock the injected yields are charged to.
static CLOCK: OnceLock<Arc<VirtualClock>> = OnceLock::new();

/// Lane ordinals, handed out in the order threads first hit a yield point.
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// (seed the schedule was built for, this thread's schedule).
    static SCHEDULE: RefCell<Option<(u64, PerturbSchedule)>> = const { RefCell::new(None) };
}

fn env_seed() -> u64 {
    *ENV_SEED.get_or_init(|| {
        std::env::var("KVCSD_PERTURB")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0)
    })
}

/// Install a perturbation seed programmatically (e.g. from a test),
/// taking precedence over `KVCSD_PERTURB`. A seed of 0 turns
/// perturbation off. Call it before the threads under test start, or
/// already-running threads keep their previous schedules.
///
/// Panics if the kvcsd-mc controlled scheduler is active: seeded
/// perturbation and exhaustive scheduling are mutually exclusive (the
/// reverse direction is enforced by `mc::Execution::begin`).
pub fn install_seed(seed: u64) {
    #[cfg(debug_assertions)]
    if seed != 0 && crate::mc::controlled_active() {
        panic!(
            "KVCSD_PERTURB and the kvcsd-mc controlled scheduler are mutually exclusive: \
             a perturbation seed was installed while an mc execution is active. The mc \
             explorer already owns every scheduling decision — injected yields would only \
             distort it. Finish the mc execution first, or drop the seed."
        );
    }
    OVERRIDE_SEED.store(seed, Ordering::Relaxed);
}

/// The seed currently driving perturbation, if any.
pub fn active_seed() -> Option<u64> {
    match OVERRIDE_SEED.load(Ordering::Relaxed) {
        0 => match env_seed() {
            0 => None,
            s => Some(s),
        },
        s => Some(s),
    }
}

/// Charge injected yields to `clock` (first installation wins; returns
/// whether this call installed it). Without a clock, yields still happen
/// but cost no virtual time.
pub fn install_clock(clock: &Arc<VirtualClock>) -> bool {
    CLOCK.set(Arc::clone(clock)).is_ok()
}

/// The deterministic per-lane decision stream. Public so tests can pin
/// "same seed ⇒ same schedule" without spawning threads.
#[derive(Debug, Clone)]
pub struct PerturbSchedule {
    rng: XorShift64,
}

impl PerturbSchedule {
    pub fn new(seed: u64, lane: u64) -> Self {
        // splitmix64 over (seed, lane) so neighbouring lanes do not get
        // correlated xorshift streams.
        let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            rng: XorShift64::new(z ^ (z >> 31)),
        }
    }

    /// The next decision: `None` = run through, `Some(n)` = yield `n`
    /// times (1..=3) before taking the lock.
    pub fn next_decision(&mut self) -> Option<u64> {
        let x = self.rng.next_u64();
        if x.is_multiple_of(YIELD_ONE_IN) {
            Some(1 + (x >> 4) % 3)
        } else {
            None
        }
    }
}

/// Yield point. Called by the `kvcsd_sim::sync` shims on every lock /
/// `Shared` acquisition in debug builds; a no-op unless a seed is active.
pub fn maybe_yield() {
    let Some(seed) = active_seed() else {
        return;
    };
    let decision = SCHEDULE
        .try_with(|slot| {
            let mut slot = slot.borrow_mut();
            let rebuild = !matches!(&*slot, Some((s, _)) if *s == seed);
            if rebuild {
                let lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
                *slot = Some((seed, PerturbSchedule::new(seed, lane)));
            }
            slot.as_mut().map(|(_, sched)| sched.next_decision())
        })
        .ok()
        .flatten()
        .flatten();
    if let Some(n) = decision {
        for _ in 0..n {
            std::thread::yield_now();
        }
        if let Some(clock) = CLOCK.get() {
            clock.advance(n * YIELD_COST_NS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, lane: u64, n: usize) -> Vec<Option<u64>> {
        let mut s = PerturbSchedule::new(seed, lane);
        (0..n).map(|_| s.next_decision()).collect()
    }

    #[test]
    fn same_seed_same_lane_same_schedule() {
        assert_eq!(stream(42, 0, 4096), stream(42, 0, 4096));
        assert_eq!(stream(42, 3, 4096), stream(42, 3, 4096));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(stream(1, 0, 4096), stream(2, 0, 4096));
    }

    #[test]
    fn different_lanes_differ() {
        assert_ne!(stream(9, 0, 4096), stream(9, 1, 4096));
    }

    #[test]
    fn schedule_actually_yields_sometimes() {
        let hits = stream(7, 0, 4096).iter().filter(|d| d.is_some()).count();
        // 1-in-16 odds over 4096 draws: expect ~256; insist on a sane band.
        assert!((64..1024).contains(&hits), "got {hits} yield decisions");
        for d in stream(7, 0, 4096).into_iter().flatten() {
            assert!((1..=3).contains(&d), "burst length out of range: {d}");
        }
    }

    #[test]
    fn inactive_without_seed_or_with_zero() {
        // Cannot assert on the process-global env here; just pin the
        // decision plumbing: install_seed(0) means "off".
        install_seed(0);
        assert_eq!(OVERRIDE_SEED.load(Ordering::Relaxed), 0);
    }
}
