//! The host-device transport: an NVMe queue pair whose DMA traffic is
//! charged to the I/O ledger.
//!
//! The real prototype maps submission/completion queues over PCIe BARs and
//! moves payloads by DMA, bypassing both the host and SoC kernels. Here
//! the "device" is an in-process object implementing [`DeviceHandler`];
//! what we preserve is the *accounting*: every command charges its wire
//! size host-to-device plus one command round trip, and every response
//! charges its wire size device-to-host on the same completion.

use std::sync::Arc;

use kvcsd_sim::IoLedger;

use crate::command::{KvCommand, KvResponse};

/// Implemented by the device-side command processor.
pub trait DeviceHandler: Send + Sync {
    /// Execute one command to completion (asynchronous jobs return
    /// immediately with a `JobStarted` response and run in the background).
    fn handle(&self, cmd: KvCommand) -> KvResponse;
}

/// A submission/completion queue pair bound to one device.
///
/// Cloning is cheap; clones share the device and ledger, mirroring how
/// multiple host threads each own an NVMe queue pair to the same drive.
#[derive(Clone)]
pub struct QueuePair {
    device: Arc<dyn DeviceHandler>,
    ledger: Arc<IoLedger>,
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePair").finish_non_exhaustive()
    }
}

impl QueuePair {
    pub fn new(device: Arc<dyn DeviceHandler>, ledger: Arc<IoLedger>) -> Self {
        Self { device, ledger }
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    /// Submit a command and wait for its completion.
    pub fn execute(&self, cmd: KvCommand) -> KvResponse {
        self.ledger.dma_h2d(cmd.wire_size());
        let resp = self.device.handle(cmd);
        self.ledger.dma_d2h_payload(resp.wire_size());
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvCommand, KvResponse};
    use crate::status::KvStatus;

    /// Echo device used to exercise the transport accounting.
    struct Echo;

    impl DeviceHandler for Echo {
        fn handle(&self, cmd: KvCommand) -> KvResponse {
            match cmd {
                KvCommand::Get { key, .. } => KvResponse::Value(key),
                KvCommand::Put { .. } => KvResponse::PutOk,
                _ => KvResponse::Err(KvStatus::Internal("unsupported".into())),
            }
        }
    }

    fn qp() -> QueuePair {
        QueuePair::new(Arc::new(Echo), Arc::new(IoLedger::new(16, 4096)))
    }

    #[test]
    fn execute_routes_to_device() {
        let qp = qp();
        let resp = qp.execute(KvCommand::Get {
            ks: 0,
            key: vec![1, 2, 3],
        });
        assert_eq!(resp, KvResponse::Value(vec![1, 2, 3]));
    }

    #[test]
    fn dma_accounting_per_command() {
        let qp = qp();
        let cmd = KvCommand::Put {
            ks: 0,
            key: vec![0; 16],
            value: vec![0; 32],
        };
        let cmd_bytes = cmd.wire_size();
        qp.execute(cmd);
        let s = qp.ledger().snapshot();
        assert_eq!(s.pcie_h2d_bytes, cmd_bytes);
        assert_eq!(s.pcie_d2h_bytes, KvResponse::PutOk.wire_size());
        // One round trip per command, not two.
        assert_eq!(s.pcie_msgs, 1);
    }

    #[test]
    fn response_payload_bytes_are_charged() {
        let qp = qp();
        qp.execute(KvCommand::Get {
            ks: 0,
            key: vec![7; 100],
        });
        let s = qp.ledger().snapshot();
        assert_eq!(
            s.pcie_d2h_bytes,
            KvResponse::Value(vec![7; 100]).wire_size()
        );
    }

    #[test]
    fn clones_share_ledger() {
        let qp1 = qp();
        let qp2 = qp1.clone();
        qp1.execute(KvCommand::Put {
            ks: 0,
            key: vec![1],
            value: vec![2],
        });
        qp2.execute(KvCommand::Put {
            ks: 0,
            key: vec![1],
            value: vec![2],
        });
        assert_eq!(qp1.ledger().snapshot().pcie_msgs, 2);
    }
}
