//! The host-device transport: an NVMe queue pair whose DMA traffic is
//! charged to the I/O ledger.
//!
//! The real prototype maps submission/completion queues over PCIe BARs and
//! moves payloads by DMA, bypassing both the host and SoC kernels. Here
//! the "device" is an in-process object implementing [`DeviceHandler`];
//! what we preserve is the *accounting*: every command charges its wire
//! size host-to-device plus one command round trip, and every response
//! charges its wire size device-to-host on the same completion.
//!
//! Two submission disciplines share one queue pair:
//!
//! * [`QueuePair::execute`] — the legacy lock-step round trip: submit one
//!   command, block until its completion. Simple, but the bus and the
//!   device idle while the host turns the crank.
//! * [`QueuePair::submit`] / [`QueuePair::poll_completions`] — the
//!   pipelined path: submissions return a [`CmdId`] immediately and
//!   completions are matched out of order by id. With
//!   [`QueuePair::with_pipeline`] attached, each command is charged
//!   *per-stage* virtual time (h2d link occupancy, command propagation,
//!   device execution lanes, d2h link occupancy), so overlapped commands
//!   pipeline instead of serializing — the whole point of the in-flight
//!   window refactor (DESIGN.md §16).
//!
//! Completion queues are *per clone*: cloning a [`QueuePair`] mirrors a
//! host thread opening its own NVMe queue pair to the same drive, so a
//! clone's completions can never be stolen by another clone's poll. The
//! device, the ledger, and the pipeline's link/lane schedule stay shared.

use std::sync::Arc;

use kvcsd_sim::sync::Mutex;
use kvcsd_sim::{HardwareSpec, IoLedger, VirtualClock};

use crate::command::{KvCommand, KvResponse};

/// Implemented by the device-side command processor.
pub trait DeviceHandler: Send + Sync {
    /// Execute one command to completion (asynchronous jobs return
    /// immediately with a `JobStarted` response and run in the background).
    fn handle(&self, cmd: KvCommand) -> KvResponse;
}

/// Identifier for a submitted command, unique within one [`QueuePair`]
/// clone. Completions are matched against it out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(pub u64);

/// Measures device busy-time around a `handle` call, in virtual ns: the
/// pipeline model charges `probe_after - probe_before` as the command's
/// device-execution occupancy. The default probe reads the shared
/// ledger's device-side accumulators.
pub type ExecProbe = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Per-stage timing model for the pipelined path, shared by all clones
/// of a queue pair (the PCIe link and the device's execution lanes are
/// physical resources; completion queues are not).
struct PipeTiming {
    clock: Arc<VirtualClock>,
    /// Max commands in flight per clone before `submit` stalls the
    /// virtual clock to the earliest completion.
    depth: usize,
    probe: ExecProbe,
    pcie_bw_bps: f64,
    pcie_cmd_ns: u64,
    sched: Arc<Mutex<LinkSched>>,
}

/// Earliest-free times for the shared transport resources.
struct LinkSched {
    h2d_free_ns: u64,
    d2h_free_ns: u64,
    lane_free_ns: Vec<u64>,
}

/// One completion waiting to be polled.
struct Completion {
    id: CmdId,
    resp: KvResponse,
    /// Virtual time at which the completion becomes visible (0 when no
    /// pipeline timing is attached).
    done_ns: u64,
    /// Submission-to-completion latency in virtual ns.
    lat_ns: u64,
}

/// Per-clone submission/completion bookkeeping.
struct QueueState {
    next_id: u64,
    ready: Vec<Completion>,
    /// Latencies of every completion returned so far, for benches.
    lat_log: Vec<u64>,
}

/// A submission/completion queue pair bound to one device.
///
/// Cloning is cheap; clones share the device, ledger, and pipeline
/// schedule, mirroring how multiple host threads each own an NVMe queue
/// pair to the same drive — but each clone's completion queue is its
/// own, so in-flight commands are private to the submitting clone.
pub struct QueuePair {
    device: Arc<dyn DeviceHandler>,
    ledger: Arc<IoLedger>,
    pipe: Option<Arc<PipeTiming>>,
    queue: Arc<Mutex<QueueState>>,
}

impl Clone for QueuePair {
    fn clone(&self) -> Self {
        Self {
            device: Arc::clone(&self.device),
            ledger: Arc::clone(&self.ledger),
            pipe: self.pipe.clone(),
            // Fresh completion queue: completions arrive on the queue
            // pair that submitted them.
            queue: Arc::new(Mutex::new(QueueState {
                next_id: 1,
                ready: Vec::new(),
                lat_log: Vec::new(),
            })),
        }
    }
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePair").finish_non_exhaustive()
    }
}

impl QueuePair {
    pub fn new(device: Arc<dyn DeviceHandler>, ledger: Arc<IoLedger>) -> Self {
        Self {
            device,
            ledger,
            pipe: None,
            queue: Arc::new(Mutex::new(QueueState {
                next_id: 1,
                ready: Vec::new(),
                lat_log: Vec::new(),
            })),
        }
    }

    pub fn ledger(&self) -> &Arc<IoLedger> {
        &self.ledger
    }

    /// Attach the per-stage pipeline timing model: submitted commands
    /// occupy the h2d link, one of `lanes` device execution slots, and
    /// the d2h link, each stage charged at [`HardwareSpec`] rates, with
    /// at most `depth` commands in flight before `submit` stalls.
    ///
    /// `probe` measures device busy-time around each `handle` call; when
    /// `None`, the shared ledger's device-side accumulators (SoC CPU +
    /// bridge + busiest flash channel) are used.
    pub fn with_pipeline(
        mut self,
        clock: Arc<VirtualClock>,
        depth: usize,
        lanes: usize,
        probe: Option<ExecProbe>,
    ) -> Self {
        let spec = HardwareSpec::default();
        let probe = probe.unwrap_or_else(|| {
            let ledger = Arc::clone(&self.ledger);
            Arc::new(move || {
                let s = ledger.snapshot();
                s.soc_cpu_ns + s.bridge_busy_ns + s.max_channel_busy_ns()
            })
        });
        self.pipe = Some(Arc::new(PipeTiming {
            clock,
            depth: depth.max(1),
            probe,
            pcie_bw_bps: spec.pcie_bw_bps,
            pcie_cmd_ns: spec.pcie_cmd_ns,
            sched: Arc::new(Mutex::new(LinkSched {
                h2d_free_ns: 0,
                d2h_free_ns: 0,
                lane_free_ns: vec![0; lanes.max(1)],
            })),
        }));
        self
    }

    /// Whether the per-stage pipeline timing model is attached.
    pub fn pipelined(&self) -> bool {
        self.pipe.is_some()
    }

    /// Submit a command and wait for its completion.
    pub fn execute(&self, cmd: KvCommand) -> KvResponse {
        self.ledger.dma_h2d(cmd.wire_size());
        let resp = self.device.handle(cmd);
        self.ledger.dma_d2h_payload(resp.wire_size());
        resp
    }

    /// Submit a command without waiting; its completion is matched by
    /// the returned id in a later [`poll_completions`] on *this* clone.
    ///
    /// With pipeline timing attached, a full window (≥ depth in-flight
    /// completions not yet visible) stalls the virtual clock to the
    /// earliest completion time before admitting the new command.
    ///
    /// [`poll_completions`]: QueuePair::poll_completions
    pub fn submit(&self, cmd: KvCommand) -> CmdId {
        if let Some(pipe) = &self.pipe {
            // Bounded queue depth: admission waits for a free slot.
            loop {
                let stall_to = {
                    let q = self.queue.lock();
                    let now = pipe.clock.now_ns();
                    let inflight = q.ready.iter().filter(|c| c.done_ns > now).count();
                    if inflight >= pipe.depth {
                        q.ready
                            .iter()
                            .filter(|c| c.done_ns > now)
                            .map(|c| c.done_ns)
                            .min()
                    } else {
                        None
                    }
                };
                match stall_to {
                    Some(t) => {
                        pipe.clock.advance_to(t);
                    }
                    None => break,
                }
            }
        }
        let cmd_bytes = cmd.wire_size();
        self.ledger.dma_h2d(cmd_bytes);

        let (submit_ns, h2d_done) = match &self.pipe {
            Some(pipe) => {
                let now = pipe.clock.now_ns();
                let xfer = Self::xfer_ns(cmd_bytes, pipe.pcie_bw_bps);
                let done = {
                    let mut s = pipe.sched.lock();
                    let start = s.h2d_free_ns.max(now);
                    s.h2d_free_ns = start + xfer;
                    s.h2d_free_ns
                };
                (now, done)
            }
            None => (0, 0),
        };

        let exec_before = self.pipe.as_ref().map(|p| (p.probe)());
        let resp = self.device.handle(cmd);
        let resp_bytes = resp.wire_size();
        self.ledger.dma_d2h_payload(resp_bytes);

        let done_ns = match &self.pipe {
            Some(pipe) => {
                let exec_ns = (pipe.probe)().saturating_sub(exec_before.unwrap_or(0));
                let arrive = h2d_done + pipe.pcie_cmd_ns;
                let d2h_xfer = Self::xfer_ns(resp_bytes, pipe.pcie_bw_bps);
                let mut s = pipe.sched.lock();
                // Earliest-free device execution lane.
                let mut lane = 0;
                for (ix, free) in s.lane_free_ns.iter().enumerate() {
                    if *free < s.lane_free_ns[lane] {
                        lane = ix;
                    }
                }
                let exec_done = s.lane_free_ns[lane].max(arrive) + exec_ns;
                s.lane_free_ns[lane] = exec_done;
                let d2h_done = s.d2h_free_ns.max(exec_done) + d2h_xfer;
                s.d2h_free_ns = d2h_done;
                d2h_done + pipe.pcie_cmd_ns
            }
            None => 0,
        };

        let mut q = self.queue.lock();
        let id = CmdId(q.next_id);
        q.next_id += 1;
        q.ready.push(Completion {
            id,
            resp,
            done_ns,
            lat_ns: done_ns.saturating_sub(submit_ns),
        });
        id
    }

    /// Drain the completions visible on this clone, out of order by id.
    ///
    /// Without pipeline timing every submitted command is already
    /// complete. With it, completions whose virtual completion time has
    /// passed are returned; if none has but some are in flight, the
    /// clock is advanced to the earliest completion (the host genuinely
    /// has nothing to do but wait). An empty queue returns an empty vec.
    pub fn poll_completions(&self) -> Vec<(CmdId, KvResponse)> {
        let stall_to = match &self.pipe {
            Some(pipe) => {
                let q = self.queue.lock();
                let now = pipe.clock.now_ns();
                if q.ready.is_empty() || q.ready.iter().any(|c| c.done_ns <= now) {
                    None
                } else {
                    q.ready.iter().map(|c| c.done_ns).min()
                }
            }
            None => None,
        };
        if let (Some(t), Some(pipe)) = (stall_to, &self.pipe) {
            pipe.clock.advance_to(t);
        }
        let now = self.pipe.as_ref().map(|p| p.clock.now_ns());
        let mut q = self.queue.lock();
        let mut out = Vec::new();
        let mut keep = Vec::new();
        for c in q.ready.drain(..) {
            match now {
                Some(now) if c.done_ns > now => keep.push(c),
                _ => out.push(c),
            }
        }
        q.ready = keep;
        out.sort_by_key(|c| (c.done_ns, c.id));
        for c in &out {
            q.lat_log.push(c.lat_ns);
        }
        out.into_iter().map(|c| (c.id, c.resp)).collect()
    }

    /// Completion latencies (virtual ns) recorded on this clone since
    /// the last take, in completion order. Benches use this for p50/p99.
    pub fn take_completion_latencies(&self) -> Vec<u64> {
        std::mem::take(&mut self.queue.lock().lat_log)
    }

    fn xfer_ns(bytes: u64, bw_bps: f64) -> u64 {
        ((bytes as f64) * 1e9 / bw_bps).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvCommand, KvResponse};
    use crate::status::KvStatus;

    /// Echo device used to exercise the transport accounting.
    struct Echo;

    impl DeviceHandler for Echo {
        fn handle(&self, cmd: KvCommand) -> KvResponse {
            match cmd {
                KvCommand::Get { key, .. } => KvResponse::Value(key),
                KvCommand::Put { .. } => KvResponse::PutOk,
                _ => KvResponse::Err(KvStatus::Internal("unsupported".into())),
            }
        }
    }

    fn qp() -> QueuePair {
        QueuePair::new(Arc::new(Echo), Arc::new(IoLedger::new(16, 4096)))
    }

    fn get(key: Vec<u8>) -> KvCommand {
        KvCommand::Get { ks: 0, key }
    }

    #[test]
    fn execute_routes_to_device() {
        let qp = qp();
        let resp = qp.execute(KvCommand::Get {
            ks: 0,
            key: vec![1, 2, 3],
        });
        assert_eq!(resp, KvResponse::Value(vec![1, 2, 3]));
    }

    #[test]
    fn dma_accounting_per_command() {
        let qp = qp();
        let cmd = KvCommand::Put {
            ks: 0,
            key: vec![0; 16],
            value: vec![0; 32],
        };
        let cmd_bytes = cmd.wire_size();
        qp.execute(cmd);
        let s = qp.ledger().snapshot();
        assert_eq!(s.pcie_h2d_bytes, cmd_bytes);
        assert_eq!(s.pcie_d2h_bytes, KvResponse::PutOk.wire_size());
        // One round trip per command, not two.
        assert_eq!(s.pcie_msgs, 1);
    }

    #[test]
    fn response_payload_bytes_are_charged() {
        let qp = qp();
        qp.execute(KvCommand::Get {
            ks: 0,
            key: vec![7; 100],
        });
        let s = qp.ledger().snapshot();
        assert_eq!(
            s.pcie_d2h_bytes,
            KvResponse::Value(vec![7; 100]).wire_size()
        );
    }

    #[test]
    fn clones_share_ledger() {
        let qp1 = qp();
        let qp2 = qp1.clone();
        qp1.execute(KvCommand::Put {
            ks: 0,
            key: vec![1],
            value: vec![2],
        });
        qp2.execute(KvCommand::Put {
            ks: 0,
            key: vec![1],
            value: vec![2],
        });
        assert_eq!(qp1.ledger().snapshot().pcie_msgs, 2);
    }

    #[test]
    fn submit_charges_the_same_dma_as_execute() {
        let a = qp();
        let b = qp();
        let id = a.submit(get(vec![9; 24]));
        let done = a.poll_completions();
        assert_eq!(done, vec![(id, KvResponse::Value(vec![9; 24]))]);
        b.execute(get(vec![9; 24]));
        assert_eq!(a.ledger().snapshot().pcie_msgs, 1);
        assert_eq!(
            a.ledger().snapshot().pcie_h2d_bytes,
            b.ledger().snapshot().pcie_h2d_bytes
        );
        assert_eq!(
            a.ledger().snapshot().pcie_d2h_bytes,
            b.ledger().snapshot().pcie_d2h_bytes
        );
    }

    #[test]
    fn completions_are_matched_by_id_across_many_submissions() {
        let qp = qp();
        let ids: Vec<CmdId> = (0u8..10).map(|i| qp.submit(get(vec![i]))).collect();
        let mut done = qp.poll_completions();
        done.sort_by_key(|(id, _)| *id);
        assert_eq!(done.len(), 10);
        for (ix, (id, resp)) in done.into_iter().enumerate() {
            assert_eq!(id, ids[ix]);
            assert_eq!(resp, KvResponse::Value(vec![ix as u8]));
        }
        assert!(qp.poll_completions().is_empty());
    }

    #[test]
    fn clones_have_private_completion_queues() {
        let qp1 = qp();
        let qp2 = qp1.clone();
        let id1 = qp1.submit(get(vec![1]));
        let id2 = qp2.submit(get(vec![2]));
        // Ids are per-clone, so both start at 1 — and neither clone can
        // drain the other's completions.
        assert_eq!(id1, id2);
        assert_eq!(qp2.poll_completions().len(), 1);
        assert_eq!(qp1.poll_completions().len(), 1);
        assert!(qp1.poll_completions().is_empty());
    }

    #[test]
    fn pipelined_commands_overlap_instead_of_serializing() {
        // Lock-step at depth 1: each command pays both pcie_cmd_ns hops
        // end to end. Deep window: propagation pipelines away.
        let spec = HardwareSpec::default();
        let lockstep = {
            let clock = Arc::new(VirtualClock::new());
            let qp = qp().with_pipeline(Arc::clone(&clock), 1, 4, None);
            for i in 0u8..32 {
                qp.submit(get(vec![i]));
                qp.poll_completions();
            }
            clock.now_ns()
        };
        let pipelined = {
            let clock = Arc::new(VirtualClock::new());
            let qp = qp().with_pipeline(Arc::clone(&clock), 32, 4, None);
            for i in 0u8..32 {
                qp.submit(get(vec![i]));
            }
            while !qp.poll_completions().is_empty() {}
            clock.now_ns()
        };
        assert!(
            lockstep >= 32 * 2 * spec.pcie_cmd_ns,
            "lock-step pays both hops per op: {lockstep}"
        );
        assert!(
            pipelined * 3 < lockstep,
            "pipelined ({pipelined}) must beat lock-step ({lockstep}) by 3x+"
        );
    }

    #[test]
    fn bounded_depth_stalls_submit_until_a_slot_frees() {
        let clock = Arc::new(VirtualClock::new());
        let qp = qp().with_pipeline(Arc::clone(&clock), 2, 4, None);
        qp.submit(get(vec![1]));
        qp.submit(get(vec![2]));
        let before = clock.now_ns();
        qp.submit(get(vec![3]));
        assert!(
            clock.now_ns() > before,
            "third submit must wait for the window"
        );
        let mut n = 0;
        loop {
            let batch = qp.poll_completions();
            if batch.is_empty() {
                break;
            }
            n += batch.len();
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn completion_latencies_are_recorded_per_completion() {
        let clock = Arc::new(VirtualClock::new());
        let qp = qp().with_pipeline(Arc::clone(&clock), 8, 4, None);
        for i in 0u8..4 {
            qp.submit(get(vec![i]));
        }
        while !qp.poll_completions().is_empty() {}
        let lats = qp.take_completion_latencies();
        assert_eq!(lats.len(), 4);
        assert!(lats.iter().all(|&l| l > 0));
        assert!(qp.take_completion_latencies().is_empty());
    }
}
