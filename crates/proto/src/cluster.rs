//! Shard and replica command framing for the multi-device cluster.
//!
//! A cluster is N independent KV-CSD devices behind a host-side router
//! (see `crates/cluster`). Two things cross crate boundaries and
//! therefore live here in the protocol crate:
//!
//! * **Shard addressing** — [`ShardId`] plus the [`ShardRoute`] header the
//!   router stamps on every command it forwards, so per-shard retries and
//!   failover redirects can be reasoned about in protocol terms.
//! * **Replication framing** — [`ReplicaShip`], the envelope a primary
//!   wraps around a sealed index/block artifact before pushing it to its
//!   peer over the replication bus. The replica replays these envelopes
//!   in `seq` order during promotion; [`ReplicaShip::wire_size`] is what
//!   the bus charges, mirroring how [`crate::transport::QueuePair`]
//!   charges command capsules to the DMA counters.
//!
//! The artifact *contents* (index blocks, sketches, sealed logs) are
//! `kvcsd-core` types; this crate only frames their byte counts, keeping
//! the proto → core dependency direction intact.

/// Identifies one shard (primary + optional replica pair) in a cluster.
pub type ShardId = u32;

/// Fixed bytes of a replication envelope on the bus: sequence number (8),
/// fencing epoch (8), shard id (4), artifact kind (1), keyspace-name
/// length (2), payload length (8), CRC (4).
pub const SHIP_HEADER_BYTES: u64 = 35;

/// What a shipped artifact contains, which decides how the replica
/// replays it at promotion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipKind {
    /// Sealed write-ahead logs (klog + vlog) from the idempotent seal —
    /// shipped the moment a compaction starts, so acked writes survive a
    /// primary dying mid-compaction. The replica must re-run compaction
    /// after installing these.
    SealedLogs,
    /// Fully built primary/secondary indexes and value blocks — shipped
    /// when compaction (and any index builds) complete. The replica
    /// installs them verbatim and never re-compacts, which is the point
    /// of index replication (Vardoulakis et al.).
    Compacted,
}

/// Routing header the cluster router attaches to a forwarded command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoute {
    /// Shard the command was routed to.
    pub shard: ShardId,
    /// How many times this command has been redirected after a failover.
    /// Lets the router distinguish "retry against the promoted replica"
    /// (redirects += 1, no backoff) from ordinary overload retries.
    pub redirects: u32,
}

impl ShardRoute {
    pub fn new(shard: ShardId) -> Self {
        Self {
            shard,
            redirects: 0,
        }
    }

    /// The route after a failover redirect to the promoted replica.
    pub fn redirected(self) -> Self {
        Self {
            shard: self.shard,
            redirects: self.redirects + 1,
        }
    }
}

/// Envelope for one artifact pushed from a primary to its replica peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaShip {
    /// Monotonic per-channel sequence number; replay is in `seq` order and
    /// a later ship for the same keyspace supersedes an earlier one.
    pub seq: u64,
    /// Fencing epoch of the primary that produced the artifact, minted at
    /// promotion. A receiver rejects any ship below the highest epoch it
    /// has accepted, so a partitioned stale primary cannot overwrite
    /// state replicated by its successor.
    pub epoch: u64,
    /// Shard whose primary produced the artifact.
    pub shard: ShardId,
    /// Keyspace the artifact belongs to.
    pub keyspace: String,
    /// What the payload contains.
    pub kind: ShipKind,
    /// Exact artifact payload size in bytes (index blocks + value blocks +
    /// metadata), as exported by the primary.
    pub payload_bytes: u64,
}

impl ReplicaShip {
    /// Bytes this envelope occupies on the replication bus.
    pub fn wire_size(&self) -> u64 {
        SHIP_HEADER_BYTES + self.keyspace.len() as u64 + self.payload_bytes
    }

    /// True when `self` makes `earlier` redundant for replay: same
    /// keyspace, newer sequence number. A `Compacted` ship carries
    /// everything the preceding `SealedLogs` ship did.
    pub fn supersedes(&self, earlier: &ReplicaShip) -> bool {
        self.keyspace == earlier.keyspace && self.seq > earlier.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ship(seq: u64, keyspace: &str, kind: ShipKind, payload: u64) -> ReplicaShip {
        ReplicaShip {
            seq,
            epoch: 1,
            shard: 1,
            keyspace: keyspace.into(),
            kind,
            payload_bytes: payload,
        }
    }

    #[test]
    fn wire_size_counts_header_name_and_payload() {
        let s = ship(7, "events", ShipKind::Compacted, 4096);
        assert_eq!(s.wire_size(), SHIP_HEADER_BYTES + 6 + 4096);
    }

    #[test]
    fn later_ship_for_same_keyspace_supersedes() {
        let sealed = ship(1, "events", ShipKind::SealedLogs, 100);
        let built = ship(2, "events", ShipKind::Compacted, 4096);
        let other = ship(3, "metrics", ShipKind::Compacted, 4096);
        assert!(built.supersedes(&sealed));
        assert!(!sealed.supersedes(&built));
        assert!(!other.supersedes(&built));
    }

    #[test]
    fn redirect_counts_failover_hops() {
        let r = ShardRoute::new(3);
        assert_eq!(r.redirects, 0);
        let r2 = r.redirected();
        assert_eq!((r2.shard, r2.redirects), (3, 1));
    }
}
