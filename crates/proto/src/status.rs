//! Status codes returned by the device, in the spirit of NVMe status fields.

use std::fmt;

/// Errors a KV-CSD device can report for a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvStatus {
    /// The named keyspace does not exist.
    KeyspaceNotFound,
    /// A keyspace with this name already exists.
    KeyspaceExists,
    /// The keyspace is in a state that forbids the operation (e.g. PUT
    /// while COMPACTING, query before COMPACTED).
    BadKeyspaceState {
        state: &'static str,
        op: &'static str,
    },
    /// The key was not found (point query miss).
    KeyNotFound,
    /// A key in the request is malformed (empty or oversized).
    BadKey,
    /// Value payload malformed or oversized.
    BadValue,
    /// The requested secondary index does not exist.
    IndexNotFound,
    /// A secondary index with this name already exists.
    IndexExists,
    /// The secondary index spec references bytes outside the value.
    BadIndexSpec,
    /// The referenced background job is unknown.
    JobNotFound,
    /// Storage capacity exhausted.
    DeviceFull,
    /// The device is overloaded and rejected the command without executing
    /// it (admission-control reject band: job queue full, DRAM or
    /// compaction debt past the reject threshold). Retry after backing off
    /// and letting background work drain.
    Busy,
    /// The device write-stalled the command (admission-control stall
    /// band): simulated stall time was charged but the command did not
    /// execute. Retry after backing off.
    Stalled,
    /// The command's deadline expired before (or while) the device could
    /// complete it. The work was not performed, or was unwound through the
    /// idempotent seal path. Retrying is pointless without a new deadline.
    DeadlineExceeded,
    /// Transient device-side error (media soft error, busy channel): the
    /// command did not execute and an identical retry may succeed.
    TransientDeviceError(String),
    /// Persistent media failure: retries will keep failing.
    MediaError(String),
    /// The device lost power mid-command; it must be power-cycled and
    /// reopened before it will accept commands again.
    PowerLoss,
    /// Cluster routing: the shard owning this key range is down and no
    /// replica is available to promote. Retrying against the same cluster
    /// cannot succeed until an operator restores the shard.
    ShardUnavailable { shard: u32 },
    /// Cluster routing: the shard's primary died and the router is
    /// promoting its replica. The command did not execute; an immediate
    /// retry will be routed to the promoted replica.
    FailoverInProgress { shard: u32 },
    /// Cluster routing: the command reached a primary whose fencing epoch
    /// is stale — it was deposed (e.g. suspected dead across a network
    /// partition) and a successor holds a newer epoch. The ack is
    /// rejected at the fence; an immediate retry will be routed to the
    /// current-epoch primary.
    EpochFenced { shard: u32 },
    /// Internal device error (wraps a flash-layer message).
    Internal(String),
}

impl KvStatus {
    /// True when an identical retry of the failed command may succeed.
    /// This is the contract the client's `RetryPolicy` keys off. `Busy`
    /// and `Stalled` are overload signals: the command never executed, so
    /// a retry after backoff is exactly what the device is asking for.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            KvStatus::TransientDeviceError(_)
                | KvStatus::Busy
                | KvStatus::Stalled
                | KvStatus::FailoverInProgress { .. }
                | KvStatus::EpochFenced { .. }
        )
    }
}

impl fmt::Display for KvStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvStatus::KeyspaceNotFound => write!(f, "keyspace not found"),
            KvStatus::KeyspaceExists => write!(f, "keyspace already exists"),
            KvStatus::BadKeyspaceState { state, op } => {
                write!(f, "operation {op} invalid in keyspace state {state}")
            }
            KvStatus::KeyNotFound => write!(f, "key not found"),
            KvStatus::BadKey => write!(f, "malformed key"),
            KvStatus::BadValue => write!(f, "malformed value"),
            KvStatus::IndexNotFound => write!(f, "secondary index not found"),
            KvStatus::IndexExists => write!(f, "secondary index already exists"),
            KvStatus::BadIndexSpec => write!(f, "secondary index spec out of value bounds"),
            KvStatus::JobNotFound => write!(f, "background job not found"),
            KvStatus::DeviceFull => write!(f, "device full"),
            KvStatus::Busy => write!(f, "device busy (overloaded, command rejected)"),
            KvStatus::Stalled => write!(f, "device stalled the command (overload)"),
            KvStatus::DeadlineExceeded => write!(f, "deadline exceeded"),
            KvStatus::TransientDeviceError(msg) => {
                write!(f, "transient device error (retryable): {msg}")
            }
            KvStatus::MediaError(msg) => write!(f, "persistent media error: {msg}"),
            KvStatus::PowerLoss => write!(f, "device power loss"),
            KvStatus::ShardUnavailable { shard } => {
                write!(f, "shard {shard} unavailable (primary dead, no replica)")
            }
            KvStatus::FailoverInProgress { shard } => {
                write!(f, "shard {shard} failing over to replica")
            }
            KvStatus::EpochFenced { shard } => {
                write!(f, "shard {shard} rejected a stale-epoch primary (fenced)")
            }
            KvStatus::Internal(msg) => write!(f, "internal device error: {msg}"),
        }
    }
}

impl std::error::Error for KvStatus {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(KvStatus, &str)> = vec![
            (KvStatus::KeyspaceNotFound, "keyspace not found"),
            (KvStatus::KeyNotFound, "key not found"),
            (
                KvStatus::BadKeyspaceState {
                    state: "COMPACTING",
                    op: "put",
                },
                "put invalid in keyspace state COMPACTING",
            ),
            (KvStatus::Internal("zone fault".into()), "zone fault"),
            (KvStatus::Busy, "busy"),
            (KvStatus::Stalled, "stalled"),
            (KvStatus::DeadlineExceeded, "deadline exceeded"),
            (
                KvStatus::ShardUnavailable { shard: 2 },
                "shard 2 unavailable",
            ),
            (
                KvStatus::FailoverInProgress { shard: 1 },
                "shard 1 failing over",
            ),
            (
                KvStatus::EpochFenced { shard: 3 },
                "shard 3 rejected a stale-epoch primary",
            ),
        ];
        for (s, needle) in cases {
            assert!(s.to_string().contains(needle), "{s:?}");
        }
    }

    #[test]
    fn retryability_split() {
        for retryable in [
            KvStatus::TransientDeviceError("soft".into()),
            KvStatus::Busy,
            KvStatus::Stalled,
            KvStatus::FailoverInProgress { shard: 0 },
            KvStatus::EpochFenced { shard: 0 },
        ] {
            assert!(retryable.is_retryable(), "{retryable:?}");
        }
        for fatal in [
            KvStatus::MediaError("die".into()),
            KvStatus::PowerLoss,
            KvStatus::DeviceFull,
            KvStatus::KeyNotFound,
            KvStatus::DeadlineExceeded,
            KvStatus::Internal("x".into()),
            KvStatus::ShardUnavailable { shard: 0 },
        ] {
            assert!(!fatal.is_retryable(), "{fatal:?}");
        }
    }
}
