//! The bulk-PUT message format.
//!
//! The paper: "To minimize communication overhead, KV-CSD supports both
//! regular PUT and bulk PUT operations. ... Each bulk put message is
//! 128 KB. This 128 KB space contains keys, values, and their respective
//! sizes. For 16 B keys and 32 B values, each message carries up to 2570
//! key-value pairs and is 7x faster than regular puts."
//!
//! Entries are packed back-to-back as `klen:u16 | vlen:u32 | key | value`.
//! With the 6-byte entry header, a 128 KiB message holds
//! `131072 / (6+16+32) = 2427` pairs of that shape — the same order of
//! magnitude as the paper's 2570 (whose header encoding is unspecified).

use std::sync::Arc;

/// Default bulk message capacity used by the client library (128 KiB).
pub const DEFAULT_BULK_BYTES: usize = 128 * 1024;

const ENTRY_HEADER: usize = 2 + 4;

/// An immutable packed batch of key-value pairs. Clones share the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkPayload {
    buf: Arc<[u8]>,
    entries: u32,
}

impl BulkPayload {
    /// Number of key-value pairs in the payload.
    pub fn len(&self) -> usize {
        self.entries as usize
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Bytes this payload occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Iterate over `(key, value)` pairs without copying.
    pub fn iter(&self) -> BulkIter<'_> {
        BulkIter {
            rest: &self.buf,
            remaining: self.entries,
        }
    }
}

/// Iterator over the entries of a [`BulkPayload`].
#[derive(Debug)]
pub struct BulkIter<'a> {
    rest: &'a [u8],
    remaining: u32,
}

impl<'a> Iterator for BulkIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let hdr = self.rest;
        if hdr.len() < ENTRY_HEADER {
            return None; // corrupt payload; stop rather than panic
        }
        let klen = u16::from_be_bytes([hdr[0], hdr[1]]) as usize;
        let vlen = u32::from_be_bytes([hdr[2], hdr[3], hdr[4], hdr[5]]) as usize;
        let hdr = &hdr[ENTRY_HEADER..];
        if hdr.len() < klen + vlen {
            return None;
        }
        let (key, rest) = hdr.split_at(klen);
        let (value, rest) = rest.split_at(vlen);
        self.rest = rest;
        self.remaining -= 1;
        Some((key, value))
    }
}

/// Incrementally packs pairs into a bounded bulk message.
#[derive(Debug)]
pub struct BulkBuilder {
    buf: Vec<u8>,
    capacity: usize,
    entries: u32,
}

impl BulkBuilder {
    /// A builder bounded at `capacity` wire bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            entries: 0,
        }
    }

    /// A builder with the paper's 128 KiB message size.
    pub fn default_size() -> Self {
        Self::new(DEFAULT_BULK_BYTES)
    }

    /// Bytes one pair costs on the wire.
    pub fn entry_bytes(key: &[u8], value: &[u8]) -> usize {
        ENTRY_HEADER + key.len() + value.len()
    }

    /// True if the pair fits in the remaining space.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        self.buf.len() + Self::entry_bytes(key, value) <= self.capacity
    }

    /// Append a pair. Returns `false` (without modifying the builder) when
    /// the pair does not fit; the caller should [`BulkBuilder::finish`] and
    /// start a new message.
    pub fn push(&mut self, key: &[u8], value: &[u8]) -> bool {
        if !self.fits(key, value) {
            return false;
        }
        debug_assert!(key.len() <= u16::MAX as usize);
        debug_assert!(value.len() <= u32::MAX as usize);
        self.buf
            .extend_from_slice(&(key.len() as u16).to_be_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.entries += 1;
        true
    }

    /// Number of pairs packed so far.
    pub fn len(&self) -> usize {
        self.entries as usize
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Seal the message.
    pub fn finish(self) -> BulkPayload {
        BulkPayload {
            buf: self.buf.into(),
            entries: self.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pairs() {
        let mut b = BulkBuilder::new(1024);
        assert!(b.push(b"alpha", b"one"));
        assert!(b.push(b"beta", b"two-two"));
        assert!(b.push(b"", b"")); // empty key/value are representable
        let p = b.finish();
        assert_eq!(p.len(), 3);
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            p.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(
            got,
            vec![
                (b"alpha".to_vec(), b"one".to_vec()),
                (b"beta".to_vec(), b"two-two".to_vec()),
                (vec![], vec![]),
            ]
        );
    }

    #[test]
    fn capacity_is_respected() {
        let mut b = BulkBuilder::new(64);
        assert!(b.push(&[1; 16], &[2; 32])); // 6+48 = 54 bytes
        assert!(!b.push(&[3; 16], &[4; 32])); // would exceed 64
        assert_eq!(b.len(), 1);
        let p = b.finish();
        assert!(p.wire_bytes() <= 64);
    }

    #[test]
    fn paper_capacity_order_of_magnitude() {
        // 16 B keys + 32 B values in a 128 KiB message.
        let mut b = BulkBuilder::default_size();
        let mut n = 0;
        while b.push(&[0u8; 16], &[0u8; 32]) {
            n += 1;
        }
        // Paper reports "up to 2570"; our 6-byte header gives 2427.
        assert_eq!(n, DEFAULT_BULK_BYTES / (6 + 16 + 32));
        assert!(n > 2400 && n < 2600);
    }

    #[test]
    fn wire_bytes_matches_content() {
        let mut b = BulkBuilder::new(1024);
        b.push(&[1; 10], &[2; 20]);
        b.push(&[3; 5], &[4; 7]);
        let p = b.finish();
        assert_eq!(p.wire_bytes(), (6 + 10 + 20) + (6 + 5 + 7));
    }

    #[test]
    fn empty_payload() {
        let p = BulkBuilder::new(16).finish();
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
        assert_eq!(p.wire_bytes(), 0);
    }

    #[test]
    fn iterator_is_restartable() {
        let mut b = BulkBuilder::new(256);
        b.push(b"k1", b"v1");
        b.push(b"k2", b"v2");
        let p = b.finish();
        assert_eq!(p.iter().count(), 2);
        assert_eq!(p.iter().count(), 2, "iter() must not consume the payload");
    }

    #[test]
    fn large_values_fit_when_capacity_allows() {
        let mut b = BulkBuilder::new(8192 + 64);
        assert!(b.push(&[9; 16], &vec![7u8; 8192]));
        let p = b.finish();
        let (k, v) = p.iter().next().unwrap();
        assert_eq!(k, &[9; 16]);
        assert_eq!(v.len(), 8192);
        assert_eq!(v[0], 7);
    }
}
