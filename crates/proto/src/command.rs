//! Typed command and response messages exchanged between the host client
//! library and the KV-CSD device.
//!
//! Commands map 1:1 to the paper's operational flow (Section V): keyspace
//! lifecycle, regular and bulk PUT, offloaded compaction, secondary-index
//! construction, and point/range queries over primary and secondary keys.

use crate::bulk::BulkPayload;
use crate::status::KvStatus;
use crate::KeyspaceId;

/// Fixed overhead of one NVMe command capsule on the wire, in bytes
/// (submission-queue entry size in NVMe is 64 B).
pub const CMD_HEADER_BYTES: u64 = 64;
/// Fixed overhead of one completion on the wire (CQ entry is 16 B).
pub const RESP_HEADER_BYTES: u64 = 16;

/// Identifier of an asynchronous device-side job (compaction, index build).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Lifecycle state of a device-side background job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    Pending,
    Running,
    Done,
    Failed(KvStatus),
}

impl JobState {
    /// True once the job has stopped, successfully or not.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed(_))
    }
}

/// Keyspace lifecycle states (Section IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyspaceState {
    /// Newly created, no data yet.
    Empty,
    /// Opened for writes; accepting PUTs.
    Writable,
    /// Compaction in flight; read-only, not yet queryable.
    Compacting,
    /// Sorted and indexed; queryable. Secondary indexes may be added.
    Compacted,
    /// A background job hit a persistent media error. The keyspace is not
    /// poisoned: its sealed logs remain intact, it stays deletable, and a
    /// new compaction may be requested to retry from them.
    Degraded,
    /// Zone/space exhaustion (or a background job dying on it) froze the
    /// keyspace: reads and scans keep serving wherever an index exists,
    /// writes fail fast with a typed error. A successful re-compaction or
    /// space reclaim transitions back to COMPACTING / COMPACTED.
    ReadOnly,
}

impl KeyspaceState {
    pub fn name(self) -> &'static str {
        match self {
            KeyspaceState::Empty => "EMPTY",
            KeyspaceState::Writable => "WRITABLE",
            KeyspaceState::Compacting => "COMPACTING",
            KeyspaceState::Compacted => "COMPACTED",
            KeyspaceState::Degraded => "DEGRADED",
            KeyspaceState::ReadOnly => "READ_ONLY",
        }
    }
}

/// One row of a ListKeyspaces response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyspaceDesc {
    pub id: KeyspaceId,
    pub name: String,
    pub state: KeyspaceState,
}

/// Metadata the keyspace manager tracks per keyspace.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyspaceStat {
    pub id: KeyspaceId,
    pub name: String,
    pub state: KeyspaceState,
    pub num_pairs: u64,
    pub min_key: Option<Vec<u8>>,
    pub max_key: Option<Vec<u8>>,
    pub secondary_indexes: Vec<String>,
    /// Bytes of raw key-value data stored in the keyspace.
    pub data_bytes: u64,
}

/// Range bound over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    Unbounded,
    Included(Vec<u8>),
    Excluded(Vec<u8>),
}

impl Bound {
    /// True if `key` satisfies this bound interpreted as a *lower* bound.
    pub fn admits_from_below(&self, key: &[u8]) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Included(b) => key >= b.as_slice(),
            Bound::Excluded(b) => key > b.as_slice(),
        }
    }

    /// True if `key` satisfies this bound interpreted as an *upper* bound.
    pub fn admits_from_above(&self, key: &[u8]) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Included(b) => key <= b.as_slice(),
            Bound::Excluded(b) => key < b.as_slice(),
        }
    }

    fn wire_len(&self) -> u64 {
        match self {
            Bound::Unbounded => 0,
            Bound::Included(b) | Bound::Excluded(b) => b.len() as u64,
        }
    }
}

/// Element type of a secondary index key, as declared by the application.
///
/// The paper's example: "an application can request creating a secondary
/// index on the last 4 bytes of the values and have KV-CSD treat them as
/// 32-bit integers."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondaryKeyType {
    U32,
    I32,
    U64,
    I64,
    F32,
    F64,
    /// Raw bytes compared lexicographically.
    Bytes,
}

impl SecondaryKeyType {
    /// Width in bytes of one key of this type, if fixed.
    pub fn width(self) -> Option<usize> {
        match self {
            SecondaryKeyType::U32 | SecondaryKeyType::I32 | SecondaryKeyType::F32 => Some(4),
            SecondaryKeyType::U64 | SecondaryKeyType::I64 | SecondaryKeyType::F64 => Some(8),
            SecondaryKeyType::Bytes => None,
        }
    }
}

/// A typed secondary-index key supplied in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SidxKey {
    U32(u32),
    I32(i32),
    U64(u64),
    I64(i64),
    F32(f32),
    F64(f64),
    Bytes(Vec<u8>),
}

impl SidxKey {
    /// Order-preserving byte encoding: for any two keys of the same type,
    /// `a < b` iff `a.encode() < b.encode()` lexicographically. Signed
    /// integers get a sign-bit flip; floats use the standard monotone
    /// IEEE-754 total-order mapping (negative values bit-inverted).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SidxKey::U32(v) => v.to_be_bytes().to_vec(),
            SidxKey::I32(v) => ((*v as u32) ^ 0x8000_0000).to_be_bytes().to_vec(),
            SidxKey::U64(v) => v.to_be_bytes().to_vec(),
            SidxKey::I64(v) => ((*v as u64) ^ 0x8000_0000_0000_0000).to_be_bytes().to_vec(),
            SidxKey::F32(v) => {
                let bits = v.to_bits();
                let mapped = if bits & 0x8000_0000 != 0 {
                    !bits
                } else {
                    bits | 0x8000_0000
                };
                mapped.to_be_bytes().to_vec()
            }
            SidxKey::F64(v) => {
                let bits = v.to_bits();
                let mapped = if bits & 0x8000_0000_0000_0000 != 0 {
                    !bits
                } else {
                    bits | 0x8000_0000_0000_0000
                };
                mapped.to_be_bytes().to_vec()
            }
            SidxKey::Bytes(b) => b.clone(),
        }
    }

    /// Decode raw little-endian value bytes (as applications lay out their
    /// records in memory) into a typed key, then use [`SidxKey::encode`]
    /// for the index representation.
    pub fn from_value_bytes(ty: SecondaryKeyType, raw: &[u8]) -> Option<SidxKey> {
        match ty {
            SecondaryKeyType::U32 => Some(SidxKey::U32(u32::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::I32 => Some(SidxKey::I32(i32::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::U64 => Some(SidxKey::U64(u64::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::I64 => Some(SidxKey::I64(i64::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::F32 => Some(SidxKey::F32(f32::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::F64 => Some(SidxKey::F64(f64::from_le_bytes(raw.try_into().ok()?))),
            SecondaryKeyType::Bytes => Some(SidxKey::Bytes(raw.to_vec())),
        }
    }
}

/// Application-supplied description of a secondary index: which byte range
/// of each value holds the key, and how to interpret it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecondaryIndexSpec {
    /// Name used to reference the index in queries.
    pub name: String,
    /// Byte offset of the key within each value.
    pub value_offset: usize,
    /// Byte length of the key within each value.
    pub value_len: usize,
    /// How to interpret those bytes.
    pub key_type: SecondaryKeyType,
}

impl SecondaryIndexSpec {
    /// Extract the order-preserving encoded secondary key from a value.
    /// Returns `None` when the value is too short or the width mismatches.
    pub fn extract(&self, value: &[u8]) -> Option<Vec<u8>> {
        if let Some(w) = self.key_type.width() {
            if w != self.value_len {
                return None;
            }
        }
        let raw = value.get(self.value_offset..self.value_offset + self.value_len)?;
        Some(SidxKey::from_value_bytes(self.key_type, raw)?.encode())
    }
}

/// A command capsule sent host -> device.
#[derive(Debug, Clone, PartialEq)]
pub enum KvCommand {
    /// Create a keyspace with a unique application-chosen name.
    CreateKeyspace { name: String },
    /// Delete a keyspace and free its zones.
    DeleteKeyspace { ks: KeyspaceId },
    /// Look up a keyspace by name.
    OpenKeyspace { name: String },
    /// Enumerate live keyspaces.
    ListKeyspaces,
    /// Insert a single key-value pair.
    Put {
        ks: KeyspaceId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// Insert a packed batch of pairs in one 128 KB-class message.
    BulkPut {
        ks: KeyspaceId,
        payload: BulkPayload,
    },
    /// Explicit fsync: make the keyspace's buffered writes durable via
    /// the device WAL (no-op when the WAL is disabled).
    Flush { ks: KeyspaceId },
    /// Start offloaded compaction (sort + primary index build).
    Compact { ks: KeyspaceId },
    /// Start offloaded compaction that also builds the given secondary
    /// indexes in the same data pass (single-step index construction; the
    /// device falls back to separated construction when SoC DRAM is
    /// tight).
    CompactAndIndex {
        ks: KeyspaceId,
        specs: Vec<SecondaryIndexSpec>,
    },
    /// Start offloaded secondary-index construction.
    BuildSecondaryIndex {
        ks: KeyspaceId,
        spec: SecondaryIndexSpec,
    },
    /// Poll an asynchronous job.
    PollJob { job: JobId },
    /// Point query over the primary key.
    Get { ks: KeyspaceId, key: Vec<u8> },
    /// Range query over the primary key.
    Range {
        ks: KeyspaceId,
        lo: Bound,
        hi: Bound,
        limit: Option<u64>,
    },
    /// Point query over a secondary index (returns full records).
    SidxGet {
        ks: KeyspaceId,
        index: String,
        key: SidxKey,
    },
    /// Range query over a secondary index (returns full records).
    SidxRange {
        ks: KeyspaceId,
        index: String,
        lo: Bound,
        hi: Bound,
        limit: Option<u64>,
    },
    /// Fetch keyspace metadata.
    Stat { ks: KeyspaceId },
    /// Attach a completion deadline (absolute sim-clock nanoseconds) to
    /// the wrapped command. The device checks the deadline at admission
    /// and at background-job step boundaries; expired work returns
    /// [`KvStatus::DeadlineExceeded`] and unwinds through the idempotent
    /// seal path.
    WithDeadline {
        deadline_ns: u64,
        cmd: Box<KvCommand>,
    },
}

impl KvCommand {
    /// Bytes this command occupies on the PCIe bus (capsule + payload).
    pub fn wire_size(&self) -> u64 {
        CMD_HEADER_BYTES
            + match self {
                KvCommand::CreateKeyspace { name } | KvCommand::OpenKeyspace { name } => {
                    name.len() as u64
                }
                KvCommand::DeleteKeyspace { .. }
                | KvCommand::ListKeyspaces
                | KvCommand::Flush { .. }
                | KvCommand::Compact { .. }
                | KvCommand::PollJob { .. }
                | KvCommand::Stat { .. } => 0,
                KvCommand::Put { key, value, .. } => (key.len() + value.len()) as u64,
                KvCommand::BulkPut { payload, .. } => payload.wire_bytes() as u64,
                KvCommand::BuildSecondaryIndex { spec, .. } => spec.name.len() as u64 + 16,
                KvCommand::CompactAndIndex { specs, .. } => {
                    specs.iter().map(|s| s.name.len() as u64 + 16).sum()
                }
                KvCommand::Get { key, .. } => key.len() as u64,
                KvCommand::Range { lo, hi, .. } => lo.wire_len() + hi.wire_len(),
                KvCommand::SidxGet { index, key, .. } => {
                    index.len() as u64 + key.encode().len() as u64
                }
                KvCommand::SidxRange { index, lo, hi, .. } => {
                    index.len() as u64 + lo.wire_len() + hi.wire_len()
                }
                // The deadline rides in the capsule header's otherwise
                // unused dwords plus an 8-byte timestamp; the inner
                // command's header is not re-sent.
                KvCommand::WithDeadline { cmd, .. } => 8 + cmd.wire_size() - CMD_HEADER_BYTES,
            }
    }

    /// The innermost command, stripped of any [`KvCommand::WithDeadline`]
    /// wrappers, along with the tightest (smallest) deadline found.
    pub fn unwrap_deadline(self) -> (Option<u64>, KvCommand) {
        let mut deadline: Option<u64> = None;
        let mut cmd = self;
        while let KvCommand::WithDeadline {
            deadline_ns,
            cmd: inner,
        } = cmd
        {
            deadline = Some(deadline.map_or(deadline_ns, |d: u64| d.min(deadline_ns)));
            cmd = *inner;
        }
        (deadline, cmd)
    }
}

/// A completion capsule sent device -> host.
#[derive(Debug, Clone, PartialEq)]
pub enum KvResponse {
    /// Keyspace created.
    Created { ks: KeyspaceId },
    /// Keyspace opened.
    Opened {
        ks: KeyspaceId,
        state: KeyspaceState,
    },
    /// Keyspace deleted.
    Deleted,
    /// Keyspace listing.
    Keyspaces(Vec<KeyspaceDesc>),
    /// PUT acknowledged.
    PutOk,
    /// Bulk PUT acknowledged with the number of pairs inserted.
    BulkPutOk { inserted: u64 },
    /// Explicit fsync acknowledged; buffered writes are durable.
    Flushed,
    /// Asynchronous job accepted.
    JobStarted { job: JobId },
    /// Job status in response to a poll.
    Job { state: JobState },
    /// Point-query result.
    Value(Vec<u8>),
    /// Range / secondary query result set (key, value) in key order.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Keyspace metadata.
    Stat(KeyspaceStat),
    /// Command failed.
    Err(KvStatus),
}

impl KvResponse {
    /// Bytes this response occupies on the PCIe bus (completion + payload).
    /// Query responses carry only *results* — this is the data-movement
    /// asymmetry at the heart of the paper's query speedups.
    pub fn wire_size(&self) -> u64 {
        RESP_HEADER_BYTES
            + match self {
                KvResponse::Created { .. }
                | KvResponse::Opened { .. }
                | KvResponse::Deleted
                | KvResponse::PutOk
                | KvResponse::BulkPutOk { .. }
                | KvResponse::Flushed
                | KvResponse::JobStarted { .. }
                | KvResponse::Job { .. }
                | KvResponse::Err(_) => 0,
                KvResponse::Keyspaces(list) => list.iter().map(|d| d.name.len() as u64 + 8).sum(),
                KvResponse::Value(v) => v.len() as u64,
                KvResponse::Entries(es) => {
                    es.iter().map(|(k, v)| (k.len() + v.len()) as u64 + 8).sum()
                }
                KvResponse::Stat(_) => 64,
            }
    }

    /// Convenience: view this response as a `Result`.
    pub fn into_result(self) -> Result<KvResponse, KvStatus> {
        match self {
            KvResponse::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_admit_correctly() {
        let lo = Bound::Included(vec![5]);
        assert!(lo.admits_from_below(&[5]));
        assert!(lo.admits_from_below(&[6]));
        assert!(!lo.admits_from_below(&[4]));
        let lo_x = Bound::Excluded(vec![5]);
        assert!(!lo_x.admits_from_below(&[5]));
        assert!(lo_x.admits_from_below(&[6]));
        let hi = Bound::Included(vec![9]);
        assert!(hi.admits_from_above(&[9]));
        assert!(!hi.admits_from_above(&[10]));
        let hi_x = Bound::Excluded(vec![9]);
        assert!(!hi_x.admits_from_above(&[9]));
        assert!(hi_x.admits_from_above(&[8]));
        assert!(Bound::Unbounded.admits_from_below(&[0]));
        assert!(Bound::Unbounded.admits_from_above(&[255; 8]));
    }

    #[test]
    fn sidx_u32_encoding_preserves_order() {
        let vals = [0u32, 1, 7, 100, u32::MAX / 2, u32::MAX];
        for w in vals.windows(2) {
            assert!(SidxKey::U32(w[0]).encode() < SidxKey::U32(w[1]).encode());
        }
    }

    #[test]
    fn sidx_i32_encoding_preserves_order() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in vals.windows(2) {
            assert!(SidxKey::I32(w[0]).encode() < SidxKey::I32(w[1]).encode());
        }
    }

    #[test]
    fn sidx_i64_encoding_preserves_order() {
        let vals = [i64::MIN, -5_000_000_000, -1, 0, 1, 5_000_000_000, i64::MAX];
        for w in vals.windows(2) {
            assert!(SidxKey::I64(w[0]).encode() < SidxKey::I64(w[1]).encode());
        }
    }

    #[test]
    fn sidx_f32_encoding_preserves_order() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -1.5,
            -0.0,
            0.0,
            1e-10,
            2.5,
            1e30,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            let (a, b) = (SidxKey::F32(w[0]).encode(), SidxKey::F32(w[1]).encode());
            if w[0] == w[1] {
                // -0.0 and 0.0 may order arbitrarily between themselves;
                // both encodings must still be adjacent/equal-comparable.
                continue;
            }
            assert!(a < b, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn sidx_f64_encoding_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            0.0,
            3.25,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(SidxKey::F64(w[0]).encode() < SidxKey::F64(w[1]).encode());
        }
    }

    #[test]
    fn from_value_bytes_roundtrip() {
        let raw = 12345.678f32.to_le_bytes();
        match SidxKey::from_value_bytes(SecondaryKeyType::F32, &raw) {
            Some(SidxKey::F32(v)) => assert_eq!(v, 12345.678),
            other => panic!("{other:?}"),
        }
        assert!(SidxKey::from_value_bytes(SecondaryKeyType::F32, &[0u8; 3]).is_none());
    }

    #[test]
    fn spec_extracts_paper_example() {
        // "create a secondary index on the last 4 bytes of the values and
        //  have KV-CSD treat them as 32-bit integers"
        let spec = SecondaryIndexSpec {
            name: "tail-int".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::I32,
        };
        let mut value = vec![0u8; 32];
        value[28..].copy_from_slice(&(-7i32).to_le_bytes());
        let enc = spec.extract(&value).unwrap();
        assert_eq!(enc, SidxKey::I32(-7).encode());
    }

    #[test]
    fn spec_rejects_out_of_bounds_and_bad_width() {
        let spec = SecondaryIndexSpec {
            name: "x".into(),
            value_offset: 30,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        };
        assert!(spec.extract(&[0u8; 32]).is_none()); // 30+4 > 32
        let bad_width = SecondaryIndexSpec {
            name: "x".into(),
            value_offset: 0,
            value_len: 3,
            key_type: SecondaryKeyType::U32,
        };
        assert!(bad_width.extract(&[0u8; 32]).is_none());
    }

    #[test]
    fn wire_sizes_reflect_payloads() {
        let get = KvCommand::Get {
            ks: 1,
            key: vec![0; 16],
        };
        assert_eq!(get.wire_size(), CMD_HEADER_BYTES + 16);
        let put = KvCommand::Put {
            ks: 1,
            key: vec![0; 16],
            value: vec![0; 32],
        };
        assert_eq!(put.wire_size(), CMD_HEADER_BYTES + 48);
        let resp = KvResponse::Value(vec![0; 32]);
        assert_eq!(resp.wire_size(), RESP_HEADER_BYTES + 32);
        let empty = KvResponse::PutOk;
        assert_eq!(empty.wire_size(), RESP_HEADER_BYTES);
        // A deadline costs 8 bytes on the wire, not a second capsule.
        let deadlined = KvCommand::WithDeadline {
            deadline_ns: 1_000_000,
            cmd: Box::new(KvCommand::Get {
                ks: 1,
                key: vec![0; 16],
            }),
        };
        assert_eq!(deadlined.wire_size(), CMD_HEADER_BYTES + 16 + 8);
    }

    #[test]
    fn unwrap_deadline_strips_wrappers_and_keeps_the_tightest() {
        let plain = KvCommand::ListKeyspaces;
        assert_eq!(plain.clone().unwrap_deadline(), (None, plain));
        let nested = KvCommand::WithDeadline {
            deadline_ns: 500,
            cmd: Box::new(KvCommand::WithDeadline {
                deadline_ns: 200,
                cmd: Box::new(KvCommand::ListKeyspaces),
            }),
        };
        assert_eq!(
            nested.unwrap_deadline(),
            (Some(200), KvCommand::ListKeyspaces)
        );
    }

    #[test]
    fn entries_response_counts_all_records() {
        let es = vec![(vec![1u8; 16], vec![2u8; 32]); 10];
        let r = KvResponse::Entries(es);
        assert_eq!(r.wire_size(), RESP_HEADER_BYTES + 10 * (16 + 32 + 8));
    }

    #[test]
    fn job_state_terminality() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed(KvStatus::DeviceFull).is_terminal());
    }

    #[test]
    fn into_result_maps_errors() {
        assert!(KvResponse::PutOk.into_result().is_ok());
        assert_eq!(
            KvResponse::Err(KvStatus::KeyNotFound).into_result(),
            Err(KvStatus::KeyNotFound)
        );
    }
}
