//! NVMe key-value command set for KV-CSD, plus the host-device transport.
//!
//! The paper's prototype speaks the standard **NVMe KV command set** [56]
//! between its client library and the device, extended with commands the
//! standard lacks: compaction, secondary-index construction and
//! secondary-index queries. This crate defines those commands as typed
//! Rust enums ([`KvCommand`] / [`KvResponse`]), the 128 KB bulk-PUT
//! message format ([`bulk::BulkBuilder`]), and a [`transport::QueuePair`]
//! that models the PCIe DMA path by charging every message's bytes to the
//! shared I/O ledger.
//!
//! The wire encoding is deliberately simple (this is a simulation, not an
//! interoperable NVMe stack) but byte-accounted: [`KvCommand::wire_size`]
//! and [`KvResponse::wire_size`] say exactly how many bytes cross the bus,
//! and the bulk payload really is packed into a flat buffer and decoded on
//! the device side.

pub mod bulk;
pub mod cluster;
pub mod command;
pub mod status;
pub mod transport;

pub use bulk::{BulkBuilder, BulkPayload, DEFAULT_BULK_BYTES};
pub use cluster::{ReplicaShip, ShardId, ShardRoute, ShipKind, SHIP_HEADER_BYTES};
pub use command::{
    Bound, JobId, JobState, KeyspaceDesc, KeyspaceStat, KeyspaceState, KvCommand, KvResponse,
    SecondaryIndexSpec, SecondaryKeyType, SidxKey,
};
pub use status::KvStatus;
pub use transport::{CmdId, DeviceHandler, ExecProbe, QueuePair};

/// Keyspace identifier assigned by the device at creation time.
pub type KeyspaceId = u32;
