//! A tiny POSIX-to-KV shim, in the spirit of TableFS and DeltaFS.
//!
//! "For applications that cannot easily switch from POSIX to key-value in
//! order to use KV-CSD, a lightweight shim layer may be used to translate
//! file I/O into key-value operations as prior work such as TableFS and
//! DeltaFS does." (Section IV)
//!
//! Files are chunked into 4 KiB extents stored as `path \0 chunk_index`
//! keys; file metadata lives under `path \0 0xFF`. Because keys sort by
//! (path, chunk), a whole file is one device-side range query.
//!
//! ```sh
//! cargo run --release --example posix_shim
//! ```

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{Bound, DeviceHandler};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::IoLedger;
use kvcsd_client::{Keyspace, KvCsd};

const CHUNK: usize = 4096;

/// Write-once file shim over one keyspace.
struct ShimFs {
    ks: Keyspace,
}

impl ShimFs {
    fn chunk_key(path: &str, ix: u32) -> Vec<u8> {
        let mut k = path.as_bytes().to_vec();
        k.push(0);
        k.extend_from_slice(&ix.to_be_bytes());
        k
    }

    fn meta_key(path: &str) -> Vec<u8> {
        let mut k = path.as_bytes().to_vec();
        k.push(0);
        k.extend_from_slice(&[0xFF; 4]);
        k
    }

    /// "creat + write + close" — the shim turns the stream into chunks.
    fn write_file(&self, bulk: &mut kvcsd_client::BulkWriter, path: &str, data: &[u8]) {
        for (ix, chunk) in data.chunks(CHUNK).enumerate() {
            bulk.put(&Self::chunk_key(path, ix as u32), chunk).unwrap();
        }
        bulk.put(&Self::meta_key(path), &(data.len() as u64).to_le_bytes())
            .unwrap();
    }

    /// "open + read" — one range query per file, processed on the device.
    fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        let size = self.ks.get(&Self::meta_key(path)).ok()?;
        let size = u64::from_le_bytes(size.try_into().ok()?);
        let entries = self
            .ks
            .range(
                Bound::Included(Self::chunk_key(path, 0)),
                Bound::Included(Self::chunk_key(path, u32::MAX)),
                None,
            )
            .ok()?;
        let mut out = Vec::with_capacity(size as usize);
        for (_, chunk) in entries {
            out.extend_from_slice(&chunk);
        }
        out.truncate(size as usize);
        Some(out)
    }

    /// "stat" — metadata only.
    fn stat(&self, path: &str) -> Option<u64> {
        let size = self.ks.get(&Self::meta_key(path)).ok()?;
        Some(u64::from_le_bytes(size.try_into().ok()?))
    }
}

fn main() {
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 512,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let device = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig::default(),
    ));
    let client = KvCsd::connect(
        Arc::clone(&device) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );

    let ks = client.create_keyspace("shimfs").unwrap();
    let fs = ShimFs { ks: ks.clone() };

    // Write a few "files" of different sizes through the shim.
    let files: Vec<(String, Vec<u8>)> = vec![
        ("checkpoint/rank-0000.dat".into(), pattern(100_000, 1)),
        ("checkpoint/rank-0001.dat".into(), pattern(50_000, 2)),
        ("logs/run.log".into(), b"step 1 ok\nstep 2 ok\n".to_vec()),
    ];
    let mut bulk = ks.bulk_writer();
    for (path, data) in &files {
        fs.write_file(&mut bulk, path, data);
    }
    bulk.finish().unwrap();
    ks.compact().unwrap();
    device.run_pending_jobs();

    // Read back through the shim and verify.
    for (path, data) in &files {
        let got = fs.read_file(path).expect("file readable");
        assert_eq!(&got, data, "{path}");
        println!(
            "{path:28} {} bytes ({} chunks), stat says {}",
            got.len(),
            data.len().div_ceil(CHUNK),
            fs.stat(path).unwrap()
        );
    }
    println!("\nall files round-tripped through the KV shim.");
}

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}
