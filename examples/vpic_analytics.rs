//! A miniature simulation-then-analytics pipeline, the workflow the paper
//! targets: a VPIC-style particle dump is bulk-loaded into KV-CSD, the
//! device compacts and builds a kinetic-energy secondary index in the
//! background, and a scientist then runs highly selective energy queries
//! that stream back only the interesting particles.
//!
//! ```sh
//! cargo run --release --example vpic_analytics
//! ```

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{Bound, DeviceHandler, SecondaryIndexSpec, SecondaryKeyType, SidxKey};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::stats::human_bytes;
use kvcsd::sim::IoLedger;
use kvcsd::workloads::vpic::{VpicDump, ENERGY_OFFSET};
use kvcsd_client::KvCsd;

fn main() {
    let particles: u64 = 200_000;
    let files = 16u32;
    let dump = VpicDump::new(particles, files, 42);

    // Device sized for the dump.
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 2048,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let device = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig::default(),
    ));
    let client = KvCsd::connect(
        Arc::clone(&device) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );

    // --- Simulation output phase -------------------------------------------
    // One keyspace per dump file, as the paper's loader does.
    println!("loading {particles} particles from {files} shards...");
    let mut keyspaces = Vec::new();
    for f in 0..files {
        let ks = client
            .create_keyspace(&format!("timestep-0042/file-{f:02}"))
            .unwrap();
        let mut bulk = ks.bulk_writer();
        for p in dump.shard(f) {
            bulk.put(&p.id, &p.payload()).unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap(); // deferred: returns immediately
        keyspaces.push(ks);
    }
    println!("simulation exits; device compacts asynchronously...");
    device.run_pending_jobs();

    // --- Index construction ---------------------------------------------------
    for ks in &keyspaces {
        ks.build_secondary_index(SecondaryIndexSpec {
            name: "energy".into(),
            value_offset: ENERGY_OFFSET,
            value_len: 4,
            key_type: SecondaryKeyType::F32,
        })
        .unwrap();
    }
    device.run_pending_jobs();
    println!("energy index built.\n");

    // --- Analytics phase --------------------------------------------------------
    for selectivity in [0.001, 0.01, 0.10] {
        let threshold = dump.energy_threshold(selectivity);
        let before = ledger.snapshot();
        let mut hits = 0usize;
        let mut hottest: Option<(f32, Vec<u8>)> = None;
        for ks in &keyspaces {
            let records = ks
                .sidx_range(
                    "energy",
                    Bound::Excluded(SidxKey::F32(threshold).encode()),
                    Bound::Unbounded,
                    None,
                )
                .unwrap();
            for (id, payload) in &records {
                let e = f32::from_le_bytes(
                    payload[ENERGY_OFFSET..ENERGY_OFFSET + 4]
                        .try_into()
                        .unwrap(),
                );
                if hottest.as_ref().is_none_or(|(he, _)| e > *he) {
                    hottest = Some((e, id.clone()));
                }
            }
            hits += records.len();
        }
        let d = ledger.snapshot().since(&before);
        println!(
            "energy > {threshold:.3} (~{:.1}% selectivity): {hits} particles; device read {}, shipped only {} to host",
            selectivity * 100.0,
            human_bytes(d.storage_read_bytes()),
            human_bytes(d.pcie_d2h_bytes),
        );
        if let Some((e, id)) = hottest {
            println!("  hottest particle: energy {e:.3}, id {:02x?}...", &id[..4]);
        }
    }
}
