//! Multiple applications sharing one KV-CSD through separate keyspaces.
//!
//! Demonstrates the keyspace manager's isolation guarantees: identical
//! keys in different keyspaces never conflict, each keyspace compacts
//! independently, and deleting one reclaims its zones without disturbing
//! the others (no device-wide garbage collection — the ZNS advantage).
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::DeviceHandler;
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::IoLedger;
use kvcsd_client::KvCsd;

fn main() {
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 512,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let device = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig::default(),
    ));
    let client = KvCsd::connect(
        Arc::clone(&device) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );

    let free_at_start = device.zone_manager().free_zones();
    println!("device has {free_at_start} free zones\n");

    // Three tenants, deliberately using the SAME keys.
    let tenants = ["telemetry", "checkpoints", "scratch"];
    let mut sessions = Vec::new();
    for name in tenants {
        let ks = client.create_keyspace(name).unwrap();
        let mut bulk = ks.bulk_writer();
        for i in 0..5_000u32 {
            // Identical key names across tenants: "keys within a keyspace
            // must be unique while across keyspaces keys can be reused".
            bulk.put(
                format!("record/{i:05}").as_bytes(),
                format!("{name}-{i}").as_bytes(),
            )
            .unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap();
        sessions.push(ks);
    }
    device.run_pending_jobs();

    // Each tenant sees only its own data.
    for (ks, name) in sessions.iter().zip(tenants) {
        let v = ks.get(b"record/00007").unwrap();
        println!("{name:12} record/00007 -> {}", String::from_utf8_lossy(&v));
        assert!(v.starts_with(name.as_bytes()));
    }

    println!("\nkeyspaces on device:");
    for desc in client.list_keyspaces().unwrap() {
        println!("  #{:<3} {:12} {:?}", desc.id, desc.name, desc.state);
    }

    // Drop the scratch tenant; its zones return to the pool immediately.
    let before = device.zone_manager().free_zones();
    sessions.pop().unwrap().delete().unwrap();
    let after = device.zone_manager().free_zones();
    println!(
        "\ndeleted 'scratch': {} zones reclaimed by zone resets (no GC), {} keyspaces remain",
        after - before,
        client.list_keyspaces().unwrap().len()
    );

    // Survivors are untouched.
    for (ks, name) in sessions.iter().zip(tenants) {
        assert!(ks
            .get(b"record/04999")
            .unwrap()
            .starts_with(name.as_bytes()));
    }
    println!("remaining tenants verified intact.");
}
