//! Quickstart: bring up a simulated KV-CSD, insert data, run offloaded
//! compaction, and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{Bound, DeviceHandler};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::IoLedger;
use kvcsd_client::KvCsd;

fn main() {
    // 1. Assemble the device: NAND array -> zoned namespace -> KV-CSD.
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 256,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let device = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig::default(),
    ));

    // 2. Connect the lightweight client library.
    let client = KvCsd::connect(
        Arc::clone(&device) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );

    // 3. Create a keyspace and bulk-insert some pairs.
    let ks = client
        .create_keyspace("quickstart")
        .expect("create keyspace");
    let mut bulk = ks.bulk_writer();
    for i in 0..10_000u32 {
        let key = format!("sensor/{i:06}");
        let value = format!("reading={}", i * 7);
        bulk.put(key.as_bytes(), value.as_bytes()).expect("put");
    }
    let inserted = bulk.finish().expect("finish");
    println!("inserted {inserted} pairs");

    // 4. Invoke deferred compaction. The command returns immediately; the
    //    device sorts and indexes in the background.
    let job = ks.compact().expect("compact");
    println!(
        "compaction job {:?} started (state: {:?})",
        job.id(),
        job.poll().unwrap()
    );
    device.run_pending_jobs(); // the device working asynchronously
    println!("compaction finished (state: {:?})", job.poll().unwrap());

    // 5. Point and range queries, processed entirely on the device.
    let v = ks.get(b"sensor/000042").expect("get");
    println!("sensor/000042 -> {}", String::from_utf8_lossy(&v));

    let entries = ks
        .range(
            Bound::Included(b"sensor/000100".to_vec()),
            Bound::Excluded(b"sensor/000105".to_vec()),
            None,
        )
        .expect("range");
    println!(
        "range sensor/000100..000105 returned {} records:",
        entries.len()
    );
    for (k, v) in &entries {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    // 6. Show what crossed the PCIe bus vs. what the device did in place.
    let s = ledger.snapshot();
    println!(
        "\nledger: {} host->device, {} device->host, {} read from NAND, {} written to NAND",
        s.pcie_h2d_bytes,
        s.pcie_d2h_bytes,
        s.storage_read_bytes(),
        s.storage_write_bytes()
    );

    let stat = ks.stat().expect("stat");
    println!("keyspace state: {:?}, {} pairs", stat.state, stat.num_pairs);
}
