/root/repo/target/release/deps/kvcsd_client-d5fd84931b8c7586.d: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

/root/repo/target/release/deps/libkvcsd_client-d5fd84931b8c7586.rlib: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

/root/repo/target/release/deps/libkvcsd_client-d5fd84931b8c7586.rmeta: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

crates/client/src/lib.rs:
crates/client/src/api.rs:
crates/client/src/error.rs:
