/root/repo/target/release/deps/kvcsd-7a559888b10da55b.d: src/lib.rs

/root/repo/target/release/deps/libkvcsd-7a559888b10da55b.rlib: src/lib.rs

/root/repo/target/release/deps/libkvcsd-7a559888b10da55b.rmeta: src/lib.rs

src/lib.rs:
