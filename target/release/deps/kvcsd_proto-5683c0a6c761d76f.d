/root/repo/target/release/deps/kvcsd_proto-5683c0a6c761d76f.d: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

/root/repo/target/release/deps/libkvcsd_proto-5683c0a6c761d76f.rlib: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

/root/repo/target/release/deps/libkvcsd_proto-5683c0a6c761d76f.rmeta: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

crates/proto/src/lib.rs:
crates/proto/src/bulk.rs:
crates/proto/src/command.rs:
crates/proto/src/status.rs:
crates/proto/src/transport.rs:
