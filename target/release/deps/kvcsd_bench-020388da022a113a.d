/root/repo/target/release/deps/kvcsd_bench-020388da022a113a.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

/root/repo/target/release/deps/libkvcsd_bench-020388da022a113a.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

/root/repo/target/release/deps/libkvcsd_bench-020388da022a113a.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/baseline.rs:
crates/bench/src/kvcsd.rs:
crates/bench/src/report.rs:
crates/bench/src/testbed.rs:
crates/bench/src/vpic_exp.rs:
