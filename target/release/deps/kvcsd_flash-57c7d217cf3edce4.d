/root/repo/target/release/deps/kvcsd_flash-57c7d217cf3edce4.d: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

/root/repo/target/release/deps/libkvcsd_flash-57c7d217cf3edce4.rlib: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

/root/repo/target/release/deps/libkvcsd_flash-57c7d217cf3edce4.rmeta: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

crates/flash/src/lib.rs:
crates/flash/src/conv.rs:
crates/flash/src/error.rs:
crates/flash/src/geometry.rs:
crates/flash/src/nand.rs:
crates/flash/src/zns.rs:
