/root/repo/target/release/deps/kvcsd_workloads-fd78871b8d7a5a7e.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

/root/repo/target/release/deps/libkvcsd_workloads-fd78871b8d7a5a7e.rlib: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

/root/repo/target/release/deps/libkvcsd_workloads-fd78871b8d7a5a7e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/vpic.rs:
