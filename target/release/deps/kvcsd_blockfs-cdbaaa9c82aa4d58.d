/root/repo/target/release/deps/kvcsd_blockfs-cdbaaa9c82aa4d58.d: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

/root/repo/target/release/deps/libkvcsd_blockfs-cdbaaa9c82aa4d58.rlib: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

/root/repo/target/release/deps/libkvcsd_blockfs-cdbaaa9c82aa4d58.rmeta: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

crates/blockfs/src/lib.rs:
crates/blockfs/src/cache.rs:
crates/blockfs/src/error.rs:
crates/blockfs/src/fs.rs:
