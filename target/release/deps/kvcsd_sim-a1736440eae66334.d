/root/repo/target/release/deps/kvcsd_sim-a1736440eae66334.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs

/root/repo/target/release/deps/libkvcsd_sim-a1736440eae66334.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs

/root/repo/target/release/deps/libkvcsd_sim-a1736440eae66334.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/config.rs:
crates/sim/src/fault.rs:
crates/sim/src/ledger.rs:
crates/sim/src/model.rs:
crates/sim/src/phase.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
