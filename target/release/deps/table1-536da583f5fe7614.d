/root/repo/target/release/deps/table1-536da583f5fe7614.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-536da583f5fe7614: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
