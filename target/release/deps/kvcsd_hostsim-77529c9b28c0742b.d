/root/repo/target/release/deps/kvcsd_hostsim-77529c9b28c0742b.d: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

/root/repo/target/release/deps/libkvcsd_hostsim-77529c9b28c0742b.rlib: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

/root/repo/target/release/deps/libkvcsd_hostsim-77529c9b28c0742b.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/pinning.rs:
crates/hostsim/src/threads.rs:
