/root/repo/target/release/examples/fault_verify-b8ad7d5d04d94ee0.d: examples/fault_verify.rs

/root/repo/target/release/examples/fault_verify-b8ad7d5d04d94ee0: examples/fault_verify.rs

examples/fault_verify.rs:
