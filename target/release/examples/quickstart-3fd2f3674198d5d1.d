/root/repo/target/release/examples/quickstart-3fd2f3674198d5d1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3fd2f3674198d5d1: examples/quickstart.rs

examples/quickstart.rs:
