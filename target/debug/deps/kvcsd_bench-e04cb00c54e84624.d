/root/repo/target/debug/deps/kvcsd_bench-e04cb00c54e84624.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_bench-e04cb00c54e84624.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/baseline.rs:
crates/bench/src/kvcsd.rs:
crates/bench/src/report.rs:
crates/bench/src/testbed.rs:
crates/bench/src/vpic_exp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
