/root/repo/target/debug/deps/ablation-692ad3eb4081dd99.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-692ad3eb4081dd99: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
