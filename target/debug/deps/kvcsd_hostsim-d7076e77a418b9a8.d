/root/repo/target/debug/deps/kvcsd_hostsim-d7076e77a418b9a8.d: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

/root/repo/target/debug/deps/kvcsd_hostsim-d7076e77a418b9a8: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/pinning.rs:
crates/hostsim/src/threads.rs:
