/root/repo/target/debug/deps/torture-ab6693ebf686b1a4.d: tests/torture.rs

/root/repo/target/debug/deps/torture-ab6693ebf686b1a4: tests/torture.rs

tests/torture.rs:
