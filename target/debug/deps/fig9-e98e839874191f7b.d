/root/repo/target/debug/deps/fig9-e98e839874191f7b.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-e98e839874191f7b: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
