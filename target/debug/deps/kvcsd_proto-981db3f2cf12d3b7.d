/root/repo/target/debug/deps/kvcsd_proto-981db3f2cf12d3b7.d: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_proto-981db3f2cf12d3b7.rmeta: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/bulk.rs:
crates/proto/src/command.rs:
crates/proto/src/status.rs:
crates/proto/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
