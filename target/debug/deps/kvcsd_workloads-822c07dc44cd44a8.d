/root/repo/target/debug/deps/kvcsd_workloads-822c07dc44cd44a8.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

/root/repo/target/debug/deps/libkvcsd_workloads-822c07dc44cd44a8.rlib: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

/root/repo/target/debug/deps/libkvcsd_workloads-822c07dc44cd44a8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/vpic.rs:
