/root/repo/target/debug/deps/kvcsd-57404e9a465960dd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd-57404e9a465960dd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
