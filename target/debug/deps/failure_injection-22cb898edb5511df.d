/root/repo/target/debug/deps/failure_injection-22cb898edb5511df.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-22cb898edb5511df: tests/failure_injection.rs

tests/failure_injection.rs:
