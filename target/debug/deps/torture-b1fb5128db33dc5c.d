/root/repo/target/debug/deps/torture-b1fb5128db33dc5c.d: tests/torture.rs Cargo.toml

/root/repo/target/debug/deps/libtorture-b1fb5128db33dc5c.rmeta: tests/torture.rs Cargo.toml

tests/torture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
