/root/repo/target/debug/deps/kvcsd_flash-8af4f1cda691e16a.d: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

/root/repo/target/debug/deps/kvcsd_flash-8af4f1cda691e16a: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

crates/flash/src/lib.rs:
crates/flash/src/conv.rs:
crates/flash/src/error.rs:
crates/flash/src/geometry.rs:
crates/flash/src/nand.rs:
crates/flash/src/zns.rs:
