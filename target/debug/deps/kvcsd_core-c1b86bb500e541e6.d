/root/repo/target/debug/deps/kvcsd_core-c1b86bb500e541e6.d: crates/core/src/lib.rs crates/core/src/compact.rs crates/core/src/device.rs crates/core/src/dram.rs crates/core/src/error.rs crates/core/src/extsort.rs crates/core/src/ingest.rs crates/core/src/keyspace.rs crates/core/src/meta.rs crates/core/src/query.rs crates/core/src/sidx.rs crates/core/src/snapshot.rs crates/core/src/soc.rs crates/core/src/wal.rs crates/core/src/zone_mgr.rs

/root/repo/target/debug/deps/kvcsd_core-c1b86bb500e541e6: crates/core/src/lib.rs crates/core/src/compact.rs crates/core/src/device.rs crates/core/src/dram.rs crates/core/src/error.rs crates/core/src/extsort.rs crates/core/src/ingest.rs crates/core/src/keyspace.rs crates/core/src/meta.rs crates/core/src/query.rs crates/core/src/sidx.rs crates/core/src/snapshot.rs crates/core/src/soc.rs crates/core/src/wal.rs crates/core/src/zone_mgr.rs

crates/core/src/lib.rs:
crates/core/src/compact.rs:
crates/core/src/device.rs:
crates/core/src/dram.rs:
crates/core/src/error.rs:
crates/core/src/extsort.rs:
crates/core/src/ingest.rs:
crates/core/src/keyspace.rs:
crates/core/src/meta.rs:
crates/core/src/query.rs:
crates/core/src/sidx.rs:
crates/core/src/snapshot.rs:
crates/core/src/soc.rs:
crates/core/src/wal.rs:
crates/core/src/zone_mgr.rs:
