/root/repo/target/debug/deps/kvcsd_blockfs-5feb525a1f53bbe1.d: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_blockfs-5feb525a1f53bbe1.rmeta: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs Cargo.toml

crates/blockfs/src/lib.rs:
crates/blockfs/src/cache.rs:
crates/blockfs/src/error.rs:
crates/blockfs/src/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
