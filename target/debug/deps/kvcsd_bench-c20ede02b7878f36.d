/root/repo/target/debug/deps/kvcsd_bench-c20ede02b7878f36.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

/root/repo/target/debug/deps/libkvcsd_bench-c20ede02b7878f36.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

/root/repo/target/debug/deps/libkvcsd_bench-c20ede02b7878f36.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/baseline.rs:
crates/bench/src/kvcsd.rs:
crates/bench/src/report.rs:
crates/bench/src/testbed.rs:
crates/bench/src/vpic_exp.rs:
