/root/repo/target/debug/deps/table1-c7c6264f15926704.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c7c6264f15926704: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
