/root/repo/target/debug/deps/kvcsd-ded41abff830ca01.d: src/lib.rs

/root/repo/target/debug/deps/libkvcsd-ded41abff830ca01.rlib: src/lib.rs

/root/repo/target/debug/deps/libkvcsd-ded41abff830ca01.rmeta: src/lib.rs

src/lib.rs:
