/root/repo/target/debug/deps/proptests-c9e92bc0142608f5.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-c9e92bc0142608f5: tests/proptests.rs

tests/proptests.rs:
