/root/repo/target/debug/deps/kvcsd_lsm-826e5d108e188015.d: crates/lsm/src/lib.rs crates/lsm/src/bloom.rs crates/lsm/src/compaction.rs crates/lsm/src/db.rs crates/lsm/src/error.rs crates/lsm/src/iterator.rs crates/lsm/src/memtable.rs crates/lsm/src/options.rs crates/lsm/src/secondary.rs crates/lsm/src/sstable.rs crates/lsm/src/version.rs crates/lsm/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_lsm-826e5d108e188015.rmeta: crates/lsm/src/lib.rs crates/lsm/src/bloom.rs crates/lsm/src/compaction.rs crates/lsm/src/db.rs crates/lsm/src/error.rs crates/lsm/src/iterator.rs crates/lsm/src/memtable.rs crates/lsm/src/options.rs crates/lsm/src/secondary.rs crates/lsm/src/sstable.rs crates/lsm/src/version.rs crates/lsm/src/wal.rs Cargo.toml

crates/lsm/src/lib.rs:
crates/lsm/src/bloom.rs:
crates/lsm/src/compaction.rs:
crates/lsm/src/db.rs:
crates/lsm/src/error.rs:
crates/lsm/src/iterator.rs:
crates/lsm/src/memtable.rs:
crates/lsm/src/options.rs:
crates/lsm/src/secondary.rs:
crates/lsm/src/sstable.rs:
crates/lsm/src/version.rs:
crates/lsm/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
