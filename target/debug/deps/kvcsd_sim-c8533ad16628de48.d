/root/repo/target/debug/deps/kvcsd_sim-c8533ad16628de48.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_sim-c8533ad16628de48.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/config.rs:
crates/sim/src/fault.rs:
crates/sim/src/ledger.rs:
crates/sim/src/model.rs:
crates/sim/src/phase.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
