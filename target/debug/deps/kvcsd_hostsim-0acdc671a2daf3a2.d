/root/repo/target/debug/deps/kvcsd_hostsim-0acdc671a2daf3a2.d: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_hostsim-0acdc671a2daf3a2.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs Cargo.toml

crates/hostsim/src/lib.rs:
crates/hostsim/src/pinning.rs:
crates/hostsim/src/threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
