/root/repo/target/debug/deps/kvcsd_flash-8fda459c3b9cb9fc.d: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

/root/repo/target/debug/deps/libkvcsd_flash-8fda459c3b9cb9fc.rlib: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

/root/repo/target/debug/deps/libkvcsd_flash-8fda459c3b9cb9fc.rmeta: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs

crates/flash/src/lib.rs:
crates/flash/src/conv.rs:
crates/flash/src/error.rs:
crates/flash/src/geometry.rs:
crates/flash/src/nand.rs:
crates/flash/src/zns.rs:
