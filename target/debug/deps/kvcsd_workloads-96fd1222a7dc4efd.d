/root/repo/target/debug/deps/kvcsd_workloads-96fd1222a7dc4efd.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_workloads-96fd1222a7dc4efd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/vpic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
