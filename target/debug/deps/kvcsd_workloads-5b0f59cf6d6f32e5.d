/root/repo/target/debug/deps/kvcsd_workloads-5b0f59cf6d6f32e5.d: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

/root/repo/target/debug/deps/kvcsd_workloads-5b0f59cf6d6f32e5: crates/workloads/src/lib.rs crates/workloads/src/kv.rs crates/workloads/src/vpic.rs

crates/workloads/src/lib.rs:
crates/workloads/src/kv.rs:
crates/workloads/src/vpic.rs:
