/root/repo/target/debug/deps/kvcsd_flash-32760fb309d986a3.d: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_flash-32760fb309d986a3.rmeta: crates/flash/src/lib.rs crates/flash/src/conv.rs crates/flash/src/error.rs crates/flash/src/geometry.rs crates/flash/src/nand.rs crates/flash/src/zns.rs Cargo.toml

crates/flash/src/lib.rs:
crates/flash/src/conv.rs:
crates/flash/src/error.rs:
crates/flash/src/geometry.rs:
crates/flash/src/nand.rs:
crates/flash/src/zns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
