/root/repo/target/debug/deps/ablation-e4ad3a12c1cf1c95.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e4ad3a12c1cf1c95.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
