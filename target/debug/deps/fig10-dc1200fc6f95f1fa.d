/root/repo/target/debug/deps/fig10-dc1200fc6f95f1fa.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-dc1200fc6f95f1fa.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
