/root/repo/target/debug/deps/kvcsd_proto-4b04972718783cbc.d: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_proto-4b04972718783cbc.rmeta: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/bulk.rs:
crates/proto/src/command.rs:
crates/proto/src/status.rs:
crates/proto/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
