/root/repo/target/debug/deps/kvcsd_sim-22a95e29cf24362b.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs

/root/repo/target/debug/deps/kvcsd_sim-22a95e29cf24362b: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/config.rs crates/sim/src/fault.rs crates/sim/src/ledger.rs crates/sim/src/model.rs crates/sim/src/phase.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/sync.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/config.rs:
crates/sim/src/fault.rs:
crates/sim/src/ledger.rs:
crates/sim/src/model.rs:
crates/sim/src/phase.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/sync.rs:
