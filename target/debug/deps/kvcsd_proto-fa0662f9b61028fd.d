/root/repo/target/debug/deps/kvcsd_proto-fa0662f9b61028fd.d: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

/root/repo/target/debug/deps/libkvcsd_proto-fa0662f9b61028fd.rlib: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

/root/repo/target/debug/deps/libkvcsd_proto-fa0662f9b61028fd.rmeta: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

crates/proto/src/lib.rs:
crates/proto/src/bulk.rs:
crates/proto/src/command.rs:
crates/proto/src/status.rs:
crates/proto/src/transport.rs:
