/root/repo/target/debug/deps/end_to_end-1f72ceae6842ee19.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1f72ceae6842ee19: tests/end_to_end.rs

tests/end_to_end.rs:
