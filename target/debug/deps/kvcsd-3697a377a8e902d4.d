/root/repo/target/debug/deps/kvcsd-3697a377a8e902d4.d: src/lib.rs

/root/repo/target/debug/deps/kvcsd-3697a377a8e902d4: src/lib.rs

src/lib.rs:
