/root/repo/target/debug/deps/kvcsd-5eb37f1b375fd9fd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd-5eb37f1b375fd9fd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
