/root/repo/target/debug/deps/kvcsd_bench-87c0525c114a0e03.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

/root/repo/target/debug/deps/kvcsd_bench-87c0525c114a0e03: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/baseline.rs crates/bench/src/kvcsd.rs crates/bench/src/report.rs crates/bench/src/testbed.rs crates/bench/src/vpic_exp.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/baseline.rs:
crates/bench/src/kvcsd.rs:
crates/bench/src/report.rs:
crates/bench/src/testbed.rs:
crates/bench/src/vpic_exp.rs:
