/root/repo/target/debug/deps/kvcsd_client-ef74371b2a8fd5e3.d: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_client-ef74371b2a8fd5e3.rmeta: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs Cargo.toml

crates/client/src/lib.rs:
crates/client/src/api.rs:
crates/client/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
