/root/repo/target/debug/deps/kvcsd_core-73bfca45f253e809.d: crates/core/src/lib.rs crates/core/src/compact.rs crates/core/src/device.rs crates/core/src/dram.rs crates/core/src/error.rs crates/core/src/extsort.rs crates/core/src/ingest.rs crates/core/src/keyspace.rs crates/core/src/meta.rs crates/core/src/query.rs crates/core/src/sidx.rs crates/core/src/snapshot.rs crates/core/src/soc.rs crates/core/src/wal.rs crates/core/src/zone_mgr.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_core-73bfca45f253e809.rmeta: crates/core/src/lib.rs crates/core/src/compact.rs crates/core/src/device.rs crates/core/src/dram.rs crates/core/src/error.rs crates/core/src/extsort.rs crates/core/src/ingest.rs crates/core/src/keyspace.rs crates/core/src/meta.rs crates/core/src/query.rs crates/core/src/sidx.rs crates/core/src/snapshot.rs crates/core/src/soc.rs crates/core/src/wal.rs crates/core/src/zone_mgr.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compact.rs:
crates/core/src/device.rs:
crates/core/src/dram.rs:
crates/core/src/error.rs:
crates/core/src/extsort.rs:
crates/core/src/ingest.rs:
crates/core/src/keyspace.rs:
crates/core/src/meta.rs:
crates/core/src/query.rs:
crates/core/src/sidx.rs:
crates/core/src/snapshot.rs:
crates/core/src/soc.rs:
crates/core/src/wal.rs:
crates/core/src/zone_mgr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
