/root/repo/target/debug/deps/micro-54c0143fd4c9be97.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-54c0143fd4c9be97.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
