/root/repo/target/debug/deps/kvcsd_lsm-d41bd9f626960034.d: crates/lsm/src/lib.rs crates/lsm/src/bloom.rs crates/lsm/src/compaction.rs crates/lsm/src/db.rs crates/lsm/src/error.rs crates/lsm/src/iterator.rs crates/lsm/src/memtable.rs crates/lsm/src/options.rs crates/lsm/src/secondary.rs crates/lsm/src/sstable.rs crates/lsm/src/version.rs crates/lsm/src/wal.rs

/root/repo/target/debug/deps/kvcsd_lsm-d41bd9f626960034: crates/lsm/src/lib.rs crates/lsm/src/bloom.rs crates/lsm/src/compaction.rs crates/lsm/src/db.rs crates/lsm/src/error.rs crates/lsm/src/iterator.rs crates/lsm/src/memtable.rs crates/lsm/src/options.rs crates/lsm/src/secondary.rs crates/lsm/src/sstable.rs crates/lsm/src/version.rs crates/lsm/src/wal.rs

crates/lsm/src/lib.rs:
crates/lsm/src/bloom.rs:
crates/lsm/src/compaction.rs:
crates/lsm/src/db.rs:
crates/lsm/src/error.rs:
crates/lsm/src/iterator.rs:
crates/lsm/src/memtable.rs:
crates/lsm/src/options.rs:
crates/lsm/src/secondary.rs:
crates/lsm/src/sstable.rs:
crates/lsm/src/version.rs:
crates/lsm/src/wal.rs:
