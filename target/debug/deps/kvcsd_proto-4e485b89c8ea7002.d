/root/repo/target/debug/deps/kvcsd_proto-4e485b89c8ea7002.d: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

/root/repo/target/debug/deps/kvcsd_proto-4e485b89c8ea7002: crates/proto/src/lib.rs crates/proto/src/bulk.rs crates/proto/src/command.rs crates/proto/src/status.rs crates/proto/src/transport.rs

crates/proto/src/lib.rs:
crates/proto/src/bulk.rs:
crates/proto/src/command.rs:
crates/proto/src/status.rs:
crates/proto/src/transport.rs:
