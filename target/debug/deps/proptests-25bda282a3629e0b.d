/root/repo/target/debug/deps/proptests-25bda282a3629e0b.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-25bda282a3629e0b.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
