/root/repo/target/debug/deps/kvcsd_client-3825a7559a62aba5.d: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

/root/repo/target/debug/deps/libkvcsd_client-3825a7559a62aba5.rlib: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

/root/repo/target/debug/deps/libkvcsd_client-3825a7559a62aba5.rmeta: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

crates/client/src/lib.rs:
crates/client/src/api.rs:
crates/client/src/error.rs:
