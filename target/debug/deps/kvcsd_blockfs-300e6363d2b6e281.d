/root/repo/target/debug/deps/kvcsd_blockfs-300e6363d2b6e281.d: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

/root/repo/target/debug/deps/libkvcsd_blockfs-300e6363d2b6e281.rlib: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

/root/repo/target/debug/deps/libkvcsd_blockfs-300e6363d2b6e281.rmeta: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

crates/blockfs/src/lib.rs:
crates/blockfs/src/cache.rs:
crates/blockfs/src/error.rs:
crates/blockfs/src/fs.rs:
