/root/repo/target/debug/deps/fig12-b583b258c79b3a64.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-b583b258c79b3a64: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
