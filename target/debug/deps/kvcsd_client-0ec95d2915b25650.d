/root/repo/target/debug/deps/kvcsd_client-0ec95d2915b25650.d: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libkvcsd_client-0ec95d2915b25650.rmeta: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs Cargo.toml

crates/client/src/lib.rs:
crates/client/src/api.rs:
crates/client/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
