/root/repo/target/debug/deps/kvcsd_blockfs-978cae8736c792c2.d: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

/root/repo/target/debug/deps/kvcsd_blockfs-978cae8736c792c2: crates/blockfs/src/lib.rs crates/blockfs/src/cache.rs crates/blockfs/src/error.rs crates/blockfs/src/fs.rs

crates/blockfs/src/lib.rs:
crates/blockfs/src/cache.rs:
crates/blockfs/src/error.rs:
crates/blockfs/src/fs.rs:
