/root/repo/target/debug/deps/kvcsd_hostsim-ee55e3d91416644d.d: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

/root/repo/target/debug/deps/libkvcsd_hostsim-ee55e3d91416644d.rlib: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

/root/repo/target/debug/deps/libkvcsd_hostsim-ee55e3d91416644d.rmeta: crates/hostsim/src/lib.rs crates/hostsim/src/pinning.rs crates/hostsim/src/threads.rs

crates/hostsim/src/lib.rs:
crates/hostsim/src/pinning.rs:
crates/hostsim/src/threads.rs:
