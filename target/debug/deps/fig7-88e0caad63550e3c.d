/root/repo/target/debug/deps/fig7-88e0caad63550e3c.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-88e0caad63550e3c: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
