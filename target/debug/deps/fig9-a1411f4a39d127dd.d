/root/repo/target/debug/deps/fig9-a1411f4a39d127dd.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-a1411f4a39d127dd.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
