/root/repo/target/debug/deps/fig8-c3b4ba8292f65ab7.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c3b4ba8292f65ab7: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
