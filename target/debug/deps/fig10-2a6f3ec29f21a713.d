/root/repo/target/debug/deps/fig10-2a6f3ec29f21a713.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-2a6f3ec29f21a713: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
