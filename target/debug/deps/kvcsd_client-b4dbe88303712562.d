/root/repo/target/debug/deps/kvcsd_client-b4dbe88303712562.d: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

/root/repo/target/debug/deps/kvcsd_client-b4dbe88303712562: crates/client/src/lib.rs crates/client/src/api.rs crates/client/src/error.rs

crates/client/src/lib.rs:
crates/client/src/api.rs:
crates/client/src/error.rs:
