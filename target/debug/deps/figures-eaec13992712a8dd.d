/root/repo/target/debug/deps/figures-eaec13992712a8dd.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-eaec13992712a8dd.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
