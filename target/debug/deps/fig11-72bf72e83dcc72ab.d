/root/repo/target/debug/deps/fig11-72bf72e83dcc72ab.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-72bf72e83dcc72ab: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
