/root/repo/target/debug/examples/posix_shim-39b810c7f3faa27a.d: examples/posix_shim.rs

/root/repo/target/debug/examples/posix_shim-39b810c7f3faa27a: examples/posix_shim.rs

examples/posix_shim.rs:
