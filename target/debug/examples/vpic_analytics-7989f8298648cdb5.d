/root/repo/target/debug/examples/vpic_analytics-7989f8298648cdb5.d: examples/vpic_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libvpic_analytics-7989f8298648cdb5.rmeta: examples/vpic_analytics.rs Cargo.toml

examples/vpic_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
