/root/repo/target/debug/examples/quickstart-5a6bd588101d3e3e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5a6bd588101d3e3e: examples/quickstart.rs

examples/quickstart.rs:
