/root/repo/target/debug/examples/vpic_analytics-22785d359daff218.d: examples/vpic_analytics.rs

/root/repo/target/debug/examples/vpic_analytics-22785d359daff218: examples/vpic_analytics.rs

examples/vpic_analytics.rs:
