/root/repo/target/debug/examples/multi_tenant-d235039a5f49aa87.d: examples/multi_tenant.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant-d235039a5f49aa87.rmeta: examples/multi_tenant.rs Cargo.toml

examples/multi_tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
