/root/repo/target/debug/examples/multi_tenant-299647fa250eb2bf.d: examples/multi_tenant.rs

/root/repo/target/debug/examples/multi_tenant-299647fa250eb2bf: examples/multi_tenant.rs

examples/multi_tenant.rs:
