/root/repo/target/debug/examples/posix_shim-20ff9f01c9ed8184.d: examples/posix_shim.rs Cargo.toml

/root/repo/target/debug/examples/libposix_shim-20ff9f01c9ed8184.rmeta: examples/posix_shim.rs Cargo.toml

examples/posix_shim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
