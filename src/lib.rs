//! Umbrella crate for the KV-CSD reproduction.
//!
//! Re-exports the public API of every sub-crate so applications can depend
//! on `kvcsd` alone. Start with [`client`] (`kvcsd_client::KvCsd`) for the
//! host-side key-value API, and see `examples/quickstart.rs` for a tour.

pub use kvcsd_blockfs as blockfs;
pub use kvcsd_client as client;
pub use kvcsd_cluster as cluster;
pub use kvcsd_core as device;
pub use kvcsd_flash as flash;
pub use kvcsd_hostsim as hostsim;
pub use kvcsd_lsm as lsm;
pub use kvcsd_proto as proto;
pub use kvcsd_sim as sim;
pub use kvcsd_workloads as workloads;
