//! Multi-threaded ingest + compact + query stress test.
//!
//! The torture harness (`tests/torture.rs`) is single-threaded by design:
//! it needs a deterministic fault schedule. This test is its concurrent
//! complement. It runs writers, readers and a background job runner
//! against one shared device *at the same time*, so every internal lock
//! in the stack (keyspace map, zone manager, zone metadata, NAND array,
//! block cache, job queue, ledger) is taken from several threads in
//! every interleaving the scheduler produces.
//!
//! In debug builds this runs under the `kvcsd_sim::sync` lock-order
//! detector (DESIGN.md §9): any pair of locks ever acquired in opposite
//! orders — a potential deadlock, even if this particular run did not
//! hang — panics with both acquisition stacks. It also runs under the
//! happens-before race detector (DESIGN.md §11): every `Shared` gauge in
//! the stack (DRAM budget, zone counts, job depth, ledger counters) is
//! epoch-checked on every access, so an unordered access pair panics
//! with both sites even if this run's timing happened to be benign.
//!
//! Set `KVCSD_PERTURB=<seed>` to additionally inject deterministic,
//! virtual-clock-charged yield points at every shim-lock acquisition —
//! the same seed reproduces the same per-thread perturbation schedule
//! (see `kvcsd_sim::perturb`). The assertions on data content are almost
//! incidental; the real product of this test is the lock-order graph and
//! access history it feeds the detectors.

use std::sync::Arc;
use std::thread;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{
    Bound, DeviceHandler, JobState, KeyspaceState, SecondaryIndexSpec, SecondaryKeyType,
};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::sync::{spawn, Mutex, Shared};
use kvcsd::sim::IoLedger;
use kvcsd_client::KvCsd;

const WRITERS: usize = 3;
const READERS: usize = 2;
const KEYSPACES_PER_WRITER: usize = 2;
const PAIRS: u32 = 160;
const SYNC_EVERY: u32 = 40;

fn key_for(writer: usize, ks: usize, i: u32) -> Vec<u8> {
    format!("w{writer}s{ks}k{i:05}").into_bytes()
}

/// Value is a pure function of the key (32 bytes, trailing f32 for the
/// secondary index), so readers can verify any pair they observe without
/// coordinating with the writer that produced it.
fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut v = vec![0u8; 32];
    for (i, slot) in v.iter_mut().take(28).enumerate() {
        *slot = ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8);
    }
    v[28..].copy_from_slice(&((((x >> 17) & 0xFFFF) as f32).to_le_bytes()));
    v
}

fn sidx_spec() -> SecondaryIndexSpec {
    SecondaryIndexSpec {
        name: "tail".into(),
        value_offset: 28,
        value_len: 4,
        key_type: SecondaryKeyType::F32,
    }
}

fn build_stack() -> (Arc<KvCsdDevice>, KvCsd) {
    let sim = SimConfig::default();
    let geom = FlashGeometry {
        channels: 8,
        blocks_per_channel: 256,
        pages_per_block: 16,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &sim.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig {
            zone_blocks: 1,
            max_open_zones: 1 << 16,
        },
    ));
    let cfg = DeviceConfig {
        cluster_width: 8,
        soc_dram_bytes: 8 << 20,
        seed: 23,
        wal: true,
        ..DeviceConfig::default()
    };
    let dev = Arc::new(KvCsdDevice::new(Arc::clone(&zns), sim.cost.clone(), cfg));
    let client = KvCsd::connect(
        Arc::clone(&dev) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );
    (dev, client)
}

/// One writer's life: for each of its keyspaces, ingest with periodic
/// fsync, compact with a secondary index, wait for the job runner to
/// finish it, then read back every pair through all three query paths.
fn writer(writer_ix: usize, client: KvCsd, published: Arc<Mutex<Vec<String>>>) {
    for ks_ix in 0..KEYSPACES_PER_WRITER {
        let name = format!("stress-w{writer_ix}-{ks_ix}");
        let ks = client.create_keyspace(&name).expect("create");
        for i in 0..PAIRS {
            let k = key_for(writer_ix, ks_ix, i);
            ks.put(&k, &value_for(&k)).expect("put");
            if i % SYNC_EVERY == SYNC_EVERY - 1 {
                ks.fsync().expect("fsync");
            }
        }
        ks.fsync().expect("final fsync");

        let job = ks.compact_with_indexes(vec![sidx_spec()]).expect("compact");
        loop {
            match job.poll().expect("poll") {
                JobState::Done => break,
                JobState::Failed(e) => panic!("{name}: compaction failed: {e}"),
                _ => thread::yield_now(),
            }
        }

        for i in 0..PAIRS {
            let k = key_for(writer_ix, ks_ix, i);
            assert_eq!(ks.get(&k).expect("get"), value_for(&k), "{name}: {k:?}");
        }
        let scan = ks
            .range(Bound::Unbounded, Bound::Unbounded, None)
            .expect("range");
        assert_eq!(scan.len() as u32, PAIRS, "{name}: scan size");
        let via_sidx = ks
            .sidx_range("tail", Bound::Unbounded, Bound::Unbounded, None)
            .expect("sidx_range");
        assert_eq!(via_sidx.len() as u32, PAIRS, "{name}: sidx size");

        published.lock().push(name);
    }
}

/// Readers chase the writers: open whatever has been published, and
/// verify every pair they can see is byte-exact and never torn.
fn reader(client: KvCsd, published: Arc<Mutex<Vec<String>>>, stop: Arc<Shared<bool>>) {
    let mut sweeps = 0u32;
    while !stop.get() || sweeps == 0 {
        let names = published.lock().clone();
        for name in names {
            let (ks, state) = client.open_keyspace(&name).expect("open");
            assert_eq!(state, KeyspaceState::Compacted, "{name}: published early");
            let sample = ks
                .range(Bound::Unbounded, Bound::Unbounded, Some(32))
                .expect("range");
            assert!(!sample.is_empty(), "{name}: empty after compaction");
            for (k, v) in &sample {
                assert_eq!(v, &value_for(k), "{name}: torn pair {k:?}");
            }
            let (k, v) = &sample[sweeps as usize % sample.len()];
            assert_eq!(&ks.get(k).expect("get"), v, "{name}: point/range disagree");
        }
        sweeps += 1;
        thread::yield_now();
    }
}

#[test]
fn concurrent_ingest_compact_query() {
    let (dev, client) = build_stack();
    // Charge perturbation yields (KVCSD_PERTURB runs) to the device clock
    // so injected delays show up in the simulated timeline.
    kvcsd::sim::perturb::install_clock(dev.clock());
    let stop = Arc::new(Shared::new(false));
    let published = Arc::new(Mutex::new(Vec::new()));

    // Background job runner: compactions and index builds only make
    // progress when someone drains the device's job queue.
    let runner = {
        let dev = Arc::clone(&dev);
        let stop = Arc::clone(&stop);
        spawn(move || {
            while !stop.get() {
                dev.run_pending_jobs();
                thread::yield_now();
            }
            dev.run_pending_jobs();
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|ix| {
            let client = client.clone();
            let published = Arc::clone(&published);
            spawn(move || writer(ix, client, published))
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let client = client.clone();
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            spawn(move || reader(client, published, stop))
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.set(true);
    for r in readers {
        r.join().expect("reader panicked");
    }
    runner.join().expect("job runner panicked");

    // Final audit from the main thread: everything every writer
    // published is still COMPACTED and complete.
    let names = published.lock().clone();
    assert_eq!(names.len(), WRITERS * KEYSPACES_PER_WRITER);
    for name in names {
        let (ks, state) = client.open_keyspace(&name).expect("open");
        assert_eq!(state, KeyspaceState::Compacted);
        let scan = ks
            .range(Bound::Unbounded, Bound::Unbounded, None)
            .expect("range");
        assert_eq!(scan.len() as u32, PAIRS, "{name}: lost pairs");
        for (k, v) in &scan {
            assert_eq!(v, &value_for(k), "{name}: torn pair {k:?}");
        }
    }
}
