//! Partition torture harness: the cluster under an unreliable network.
//!
//! Where `cluster_torture.rs` kills devices, this suite attacks the
//! *links*: seeded per-link drop/duplicate/reorder/delay faults plus
//! scheduled bidirectional partitions (DESIGN.md §14). The invariants:
//!
//! * **Acked durability** — under swept partition schedules, every write
//!   whose COMPACT was acknowledged survives any single-primary death;
//!   a seal that cannot reach the replica log is never acked.
//! * **No split-brain** — at most one primary acks per fencing epoch:
//!   a suspect-deposed primary keeps executing, but every ack it would
//!   return is fenced (`EpochFenced`) and every artifact it ships is
//!   rejected at the replica's receive fence.
//! * **Convergence** — after a partition heals, anti-entropy
//!   reconciliation re-ships exactly the artifact gap and a subsequent
//!   promotion serves every committed pair from the replica log.
//! * **Determinism** — the same plan seed reproduces the identical
//!   partition, failover and link-event schedule, byte for byte.
//!
//! The `fast_` tests are the CI torture subset (run under `KVCSD_RACE=on`
//! and perturbation seeds); the sweeps run with the tier-1 suite.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd::cluster::{ClusterConfig, ClusterRouter, ShardHealth};
use kvcsd::proto::{Bound, DeviceHandler, JobState, KvCommand, KvResponse, KvStatus};
use kvcsd::sim::FaultPlan;

const SHARDS: u32 = 2;
const PAIRS_PER_BATCH: u32 = 40;

/// The value is a pure function of the key, so a torn or half-applied
/// pair that becomes visible is caught by recomputation.
fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut v = vec![0u8; 20];
    for (i, slot) in v.iter_mut().enumerate() {
        *slot = ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8);
    }
    v
}

fn router(plan: FaultPlan, shards: u32, partition_failover: bool) -> Arc<ClusterRouter> {
    Arc::new(ClusterRouter::new(ClusterConfig {
        shards,
        fault_plan: plan,
        partition_failover,
        ..ClusterConfig::default()
    }))
}

/// Drive one command through the router, absorbing the two retryable
/// fencing bounces exactly the way the client's fail-fast redirect does:
/// `FailoverInProgress` while a promotion swaps the primary, and
/// `EpochFenced` when the command raced the swap onto the deposed one.
fn drive(r: &ClusterRouter, mut make: impl FnMut() -> KvCommand) -> Result<KvResponse, KvStatus> {
    for _ in 0..24 {
        match r.handle(make()) {
            KvResponse::Err(KvStatus::FailoverInProgress { .. })
            | KvResponse::Err(KvStatus::EpochFenced { .. }) => continue,
            KvResponse::Err(e) => return Err(e),
            resp => return Ok(resp),
        }
    }
    panic!("command did not settle after 24 fencing redirects");
}

/// Submit COMPACT and poll to a terminal state. `false` on failure.
fn compact_to_done(r: &ClusterRouter, ks: u32) -> bool {
    let job = match drive(r, || KvCommand::Compact { ks }) {
        Ok(KvResponse::JobStarted { job }) => job,
        _ => return false,
    };
    for _ in 0..64 {
        match drive(r, || KvCommand::PollJob { job }) {
            Ok(KvResponse::Job {
                state: JobState::Done,
            }) => return true,
            Ok(KvResponse::Job {
                state: JobState::Failed(_),
            }) => return false,
            Ok(_) => {}
            Err(_) => return false,
        }
    }
    false
}

fn get_matches(r: &ClusterRouter, ks: u32, key: &[u8]) -> bool {
    matches!(
        drive(r, || KvCommand::Get {
            ks,
            key: key.to_vec(),
        }),
        Ok(KvResponse::Value(v)) if v == value_for(key)
    )
}

/// Put a batch of pairs into a fresh keyspace and compact it to the
/// sealed-and-shipped (cluster-durable) state. A suspect-deposition can
/// eat the volatile portion of an attempt — by contract — so an attempt
/// only counts once every pair verifies readable; otherwise it is
/// discarded and redone under a new name.
fn commit_batch(r: &ClusterRouter, batch: usize) -> (u32, Vec<Vec<u8>>) {
    for attempt in 0..8u32 {
        let name = format!("p{batch}-try{attempt}");
        let ks = match drive(r, || KvCommand::CreateKeyspace { name: name.clone() }) {
            Ok(KvResponse::Created { ks }) => ks,
            Ok(resp) => panic!("create: unexpected {resp:?}"),
            Err(e) => panic!("create failed: {e}"),
        };
        let keys: Vec<Vec<u8>> = (0..PAIRS_PER_BATCH)
            .map(|i| format!("p{batch}a{attempt:02}k{i:05}").into_bytes())
            .collect();
        let mut aborted = false;
        for k in &keys {
            if drive(r, || KvCommand::Put {
                ks,
                key: k.clone(),
                value: value_for(k),
            })
            .is_err()
            {
                aborted = true;
                break;
            }
        }
        if !aborted {
            aborted = !compact_to_done(r, ks);
        }
        if !aborted && keys.iter().all(|k| get_matches(r, ks, k)) {
            return (ks, keys);
        }
        let _ = drive(r, || KvCommand::DeleteKeyspace { ks });
    }
    panic!("batch {batch} did not commit in 8 attempts");
}

/// Acked-durability + scatter-gather integrity for every committed batch.
fn verify_committed(r: &ClusterRouter, committed: &[(u32, Vec<Vec<u8>>)]) {
    for (ks, keys) in committed {
        for k in keys {
            assert!(
                get_matches(r, *ks, k),
                "committed key {:?} lost or damaged",
                String::from_utf8_lossy(k)
            );
        }
        let entries = match drive(r, || KvCommand::Range {
            ks: *ks,
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            limit: None,
        }) {
            Ok(KvResponse::Entries(es)) => es,
            other => panic!("range: {other:?}"),
        };
        let want: BTreeMap<Vec<u8>, Vec<u8>> =
            keys.iter().map(|k| (k.clone(), value_for(k))).collect();
        assert_eq!(entries.len(), want.len(), "range cardinality mismatch");
        let mut prev: Option<&[u8]> = None;
        for (k, v) in &entries {
            assert!(prev.is_none_or(|p| p < k.as_slice()), "range out of order");
            assert_eq!(Some(v), want.get(k), "range value mismatch");
            prev = Some(k);
        }
    }
}

/// Promote every shard's replica, asserting the shard comes back.
fn kill_all_primaries(r: &ClusterRouter, shards: u32) {
    for ix in 0..shards {
        r.kill_shard(ix);
        assert_eq!(
            r.shard_health(ix),
            ShardHealth::Healthy,
            "shard {ix} must come back healthy after promotion"
        );
    }
}

// ---------------------------------------------------------------------
// CI fast subset
// ---------------------------------------------------------------------

/// Sweep the partition open point across the ship schedule so the cut
/// lands before, during and after the first seal's retry budget. Every
/// acked write must survive a full fleet promotion afterwards.
#[test]
fn fast_acked_writes_survive_swept_partition_schedules() {
    for at in [1u64, 3, 7, 15, 31] {
        let mut plan = FaultPlan::none().with_partition_at(at, Some(6));
        plan.seed = 0xC0FF_EE00 ^ at;
        let r = router(plan, SHARDS, true);
        let committed: Vec<_> = (0..2).map(|b| commit_batch(&r, b)).collect();
        kill_all_primaries(&r, SHARDS);
        verify_committed(&r, &committed);
    }
}

/// Split-brain containment: after a suspect-deposition both sides of the
/// partition keep executing, but only the promoted primary can ack — the
/// deposed one is fenced on every client-visible path and its ships are
/// rejected at the replica's receive fence.
#[test]
fn fast_at_most_one_primary_acks_per_epoch() {
    // A permanent partition: under suspect-failover the durability
    // contract means no COMPACT can ever ack (the seal cannot reach the
    // replica log), so this test drives the raw handler, not a batch.
    let r = router(FaultPlan::none().with_partition_at(1, None), 1, true);
    let ks = match r.handle(KvCommand::CreateKeyspace { name: "t".into() }) {
        KvResponse::Created { ks } => ks,
        other => panic!("create: {other:?}"),
    };
    let keys: Vec<Vec<u8>> = (0..10).map(|i| format!("k{i:02}").into_bytes()).collect();
    for k in &keys {
        let resp = r.handle(KvCommand::Put {
            ks,
            key: k.clone(),
            value: value_for(k),
        });
        assert!(
            matches!(resp, KvResponse::PutOk),
            "device-local puts ack across the partition: {resp:?}"
        );
    }
    let resp = r.handle(KvCommand::Compact { ks });
    assert!(
        matches!(
            resp,
            KvResponse::Err(KvStatus::FailoverInProgress { shard: 0 })
        ),
        "a seal that cannot reach the replica must not ack: {resp:?}"
    );
    let events = r.events();
    assert_eq!(events.len(), 1);
    assert!(events[0].suspected, "deposed on suspicion, not death");
    assert_eq!(
        r.shard_epoch(0),
        2,
        "the promotion mints exactly one fencing epoch"
    );
    assert!(r.has_deposed(0), "the suspect is kept around, fenced");
    // The deposed ex-primary still executes every command class — it has
    // the keyspace and the volatile puts — but every ack is fenced, so
    // per epoch only the promoted primary acks.
    let local = r
        .with_deposed_device(0, |d| d.keyspaces().list().first().map(|(id, _, _)| *id))
        .flatten()
        .expect("deposed primary kept its keyspaces");
    for cmd in [
        KvCommand::Put {
            ks: local,
            key: b"rogue".to_vec(),
            value: b"write".to_vec(),
        },
        KvCommand::Get {
            ks: local,
            key: keys[0].clone(),
        },
        KvCommand::Compact { ks: local },
    ] {
        assert_eq!(
            r.exec_on_deposed(0, cmd).unwrap_err(),
            KvStatus::EpochFenced { shard: 0 },
            "deposed primary must not ack in the new epoch"
        );
    }
    // Meanwhile the promoted primary acks fresh writes in the new epoch
    // (the deposed one's volatile puts are gone — they were never acked
    // as durable, only a COMPACT ack promises replica durability; and
    // reading them back would need a COMPACT, which correctly cannot ack
    // while the partition stays open).
    for k in &keys {
        drive(&r, || KvCommand::Put {
            ks,
            key: k.clone(),
            value: value_for(k),
        })
        .expect("the promoted primary must ack in its own epoch");
    }
    // And even with the link healed, the stale epoch cannot ship.
    let fenced_before = r.replica_log(0).fenced();
    r.shard_link(0).heal_link_now();
    let name = r
        .with_deposed_device(0, |d| {
            d.keyspaces().list().first().map(|(_, n, _)| n.clone())
        })
        .flatten()
        .expect("deposed primary kept its keyspaces");
    r.ship_from_deposed(0, &name)
        .expect("healed link delivers the stale ship");
    assert_eq!(
        r.replica_log(0).fenced(),
        fenced_before + 1,
        "stale-epoch ship must be rejected at the receive fence"
    );
}

/// Availability mode: the primary rides out the partition, acked seals
/// bounce retryably, and after the heal anti-entropy re-ships exactly
/// the gap — proven by promoting the replica and reading everything.
#[test]
fn fast_replicas_converge_after_heal() {
    let r = router(FaultPlan::none(), 1, false);
    let pre = commit_batch(&r, 0);
    r.shard_link(0).partition_now();
    // Writes keep landing (puts are device-local) but the durability
    // gate holds: a COMPACT that cannot ship does not ack.
    let ks = match drive(&r, || KvCommand::CreateKeyspace {
        name: "during-partition".into(),
    }) {
        Ok(KvResponse::Created { ks }) => ks,
        other => panic!("create: {other:?}"),
    };
    let keys: Vec<Vec<u8>> = (0..PAIRS_PER_BATCH)
        .map(|i| format!("gapk{i:05}").into_bytes())
        .collect();
    for k in &keys {
        drive(&r, || KvCommand::Put {
            ks,
            key: k.clone(),
            value: value_for(k),
        })
        .expect("puts are device-local; the partition must not block them");
    }
    assert!(
        matches!(
            drive(&r, || KvCommand::Compact { ks }),
            Err(KvStatus::TransientDeviceError(_))
        ),
        "a seal across an open partition must bounce retryably"
    );
    assert!(r.events().is_empty(), "availability mode never deposes");
    assert_eq!(r.reconcile(), 0, "reconcile must skip partitioned links");
    r.shard_link(0).heal_link_now();
    assert!(r.reconcile() >= 1, "the heal exposes the artifact gap");
    assert!(compact_to_done(&r, ks), "the retried seal now ships");
    assert_eq!(r.reconcile(), 0, "replica converged — nothing to re-ship");
    // The convergence proof: promote the replica and read it all back.
    kill_all_primaries(&r, 1);
    verify_committed(&r, &[pre, (ks, keys)]);
}

/// One plan seed fixes the whole torture run: the partition schedule,
/// the failover/deposition sequence, every per-link fault event and the
/// fabric traffic totals reproduce exactly.
#[test]
fn fast_same_seed_yields_the_same_partition_and_failover_schedule() {
    let run = |seed: u64| {
        let mut plan = FaultPlan::none()
            .with_link_faults(0.2, 0.1, 0.1, 0.2)
            .with_link_delay_ns(40_000)
            .with_partition_at(5, Some(6));
        plan.seed = seed;
        let r = router(plan, SHARDS, true);
        let committed: Vec<_> = (0..2).map(|b| commit_batch(&r, b)).collect();
        verify_committed(&r, &committed);
        let links: Vec<_> = (0..SHARDS)
            .map(|ix| r.shard_link(ix).link_events())
            .collect();
        let epochs: Vec<_> = (0..SHARDS).map(|ix| r.shard_epoch(ix)).collect();
        (
            r.events(),
            links,
            epochs,
            r.fabric_ledger().custom("bus_msgs"),
            r.fabric_ledger().custom("bus_bytes"),
        )
    };
    let a = run(0xDEAD_BEEF);
    let b = run(0xDEAD_BEEF);
    assert_eq!(a, b, "same seed must reproduce the full schedule");
}

// ---------------------------------------------------------------------
// Slower sweeps (tier-1 only)
// ---------------------------------------------------------------------

/// Duplicate every delivery: at-least-once transport, exactly-once
/// application. The replica log dedups on (keyspace, seq) so a dup storm
/// changes neither the promoted state nor the acked data.
#[test]
fn duplicated_deliveries_apply_exactly_once() {
    let mut plan = FaultPlan::none().with_link_faults(0.0, 1.0, 0.0, 0.0);
    plan.seed = 7;
    let r = router(plan, 1, true);
    let committed = vec![commit_batch(&r, 0), commit_batch(&r, 1)];
    assert!(
        r.replica_log(0).duplicates() > 0,
        "a dup probability of 1.0 must exercise the dedup path"
    );
    kill_all_primaries(&r, 1);
    verify_committed(&r, &committed);
}

/// A thoroughly lossy link — drops, dups, reorders and delays at once —
/// slows replication down but never corrupts it: retries and the receive
/// fence keep every acked batch intact through a full fleet promotion.
#[test]
fn lossy_links_preserve_acked_durability() {
    for seed in [11u64, 29, 47] {
        let mut plan = FaultPlan::none()
            .with_link_faults(0.25, 0.15, 0.1, 0.3)
            .with_link_delay_ns(80_000);
        plan.seed = seed;
        let r = router(plan, SHARDS, true);
        let committed: Vec<_> = (0..2).map(|b| commit_batch(&r, b)).collect();
        kill_all_primaries(&r, SHARDS);
        verify_committed(&r, &committed);
    }
}
