//! Pipelined-ingest contract tests: acked-only durability of the write
//! accelerator across power cuts, out-of-order completion matching
//! under seeded device faults, and schedule determinism.
//!
//! The durability sweep cuts power at several flash-op positions while
//! the accelerator has a batch staged host-side and bulks in flight,
//! then reopens the device fault-free and asserts:
//!
//! * every pair covered by a successful `flush()` + `fsync()` is
//!   present byte-exact (acked-and-synced data is never lost);
//! * every *visible* pair recomputes from its key (nothing is ever torn
//!   or half-visible, staged batch or not);
//! * pairs the accelerator never reported durable may vanish freely.

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{DeviceHandler, JobState, KvCommand, KvResponse, KvStatus, QueuePair};
use kvcsd::sim::config::{CostModel, SimConfig};
use kvcsd::sim::{FaultInjector, FaultPlan, IoLedger, VirtualClock};
use kvcsd_client::{ClientError, InflightWindow, KvCsd, RetryPolicy};

const PAIRS: u32 = 600;
const SYNC_EVERY: u32 = 150;

fn key_for(i: u32) -> Vec<u8> {
    format!("p{i:05}").into_bytes()
}

/// Value is a pure function of the key so a torn pair is caught by
/// recomputation.
fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (0..48)
        .map(|i| ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8))
        .collect()
}

/// Minimal crash-recovery stack (the torture harness's skeleton).
struct Stack {
    cost: CostModel,
    cfg: DeviceConfig,
    ledger: Arc<IoLedger>,
    zns: Arc<ZonedNamespace>,
    inj: Arc<FaultInjector>,
    dev: Arc<KvCsdDevice>,
    client: KvCsd,
    crashes: u64,
}

impl Stack {
    fn new(plan: FaultPlan) -> Self {
        let sim = SimConfig::default();
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &sim.hw, Arc::clone(&ledger)));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 1,
                max_open_zones: 1 << 16,
            },
        ));
        let cfg = DeviceConfig {
            cluster_width: 8,
            soc_dram_bytes: 8 << 20,
            seed: 11,
            wal: true,
            ..DeviceConfig::default()
        };
        let dev = Arc::new(KvCsdDevice::new(
            Arc::clone(&zns),
            sim.cost.clone(),
            cfg.clone(),
        ));
        let client = KvCsd::connect(
            Arc::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        );
        let inj = Arc::new(FaultInjector::new(plan));
        zns.nand().set_fault_injector(Some(Arc::clone(&inj)));
        Self {
            cost: sim.cost,
            cfg,
            ledger,
            zns,
            inj,
            dev,
            client,
            crashes: 0,
        }
    }

    /// Power-cycle after an injected cut: reopen from flash fault-free.
    fn crash(&mut self, err: &ClientError) {
        let expected = matches!(err, ClientError::Device(KvStatus::PowerLoss))
            || matches!(err, ClientError::RetriesExhausted { .. })
            || self.inj.is_powered_off();
        assert!(expected, "unexpected error under power-cut plan: {err:?}");
        self.crashes += 1;
        self.zns.nand().set_fault_injector(None);
        self.inj.power_restore();
        let dev = KvCsdDevice::reopen(Arc::clone(&self.zns), self.cost.clone(), self.cfg.clone())
            .expect("fault-free recovery must succeed");
        dev.run_pending_jobs();
        self.dev = Arc::new(dev);
        self.client = KvCsd::connect(
            Arc::clone(&self.dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&self.ledger),
        );
    }
}

/// One sweep member: accelerated ingest with a power cut at flash op
/// `cut_at`. Returns whether a crash actually fired.
fn run_power_cut(cut_at: u64, seed: u64) -> bool {
    let mut t = Stack::new(FaultPlan::power_cut_at(cut_at, seed));
    let name = "accel";
    let mut last_synced: i64 = -1;
    let crashed = 'attempt: {
        let ks = match t.client.create_keyspace(name) {
            Ok(ks) => ks,
            Err(e) => {
                t.crash(&e);
                break 'attempt true;
            }
        };
        // Small batches + shallow window so the cut lands with entries
        // staged host-side and bulks in flight.
        let accel = ks.write_accelerator().with_target_bytes(2048).with_depth(2);
        let mut i = 0u32;
        while i < PAIRS {
            let k = key_for(i);
            if let Err(e) = accel.put(&k, &value_for(&k)) {
                t.crash(&e);
                break 'attempt true;
            }
            i += 1;
            if i.is_multiple_of(SYNC_EVERY) {
                let synced = accel.flush().and_then(|_| ks.fsync().map(|_| ()));
                match synced {
                    Ok(()) => last_synced = i as i64 - 1,
                    Err(e) => {
                        t.crash(&e);
                        break 'attempt true;
                    }
                }
            }
        }
        match accel.flush().and_then(|_| ks.fsync().map(|_| ())) {
            Ok(()) => {
                last_synced = PAIRS as i64 - 1;
                false
            }
            Err(e) => {
                t.crash(&e);
                true
            }
        }
    };

    // Recovery contract. Point gets need a compacted keyspace, so the
    // survivors are sealed first (fault-free — the plan's single cut
    // has fired or is disarmed). If the cut predated keyspace creation
    // there is nothing to check; nothing was ever reported durable.
    t.zns.nand().set_fault_injector(None);
    match t.client.open_keyspace(name) {
        Ok((ks, _)) => {
            let job = match ks.compact() {
                Ok(job) => job,
                Err(e) => {
                    assert!(last_synced < 0, "compact after recovery: {e:?}");
                    return crashed;
                }
            };
            loop {
                t.dev.run_pending_jobs();
                match job.poll().expect("poll recovery compaction") {
                    JobState::Done => break,
                    JobState::Failed(e) => panic!("recovery compaction failed: {e}"),
                    _ => {}
                }
            }
            for j in 0..PAIRS {
                let k = key_for(j);
                match ks.get(&k) {
                    Ok(v) => assert_eq!(
                        v,
                        value_for(&k),
                        "pair {j} is torn/half-visible after cut at {cut_at}"
                    ),
                    Err(ClientError::Device(KvStatus::KeyNotFound)) => assert!(
                        j as i64 > last_synced,
                        "acked+synced pair {j} lost after cut at {cut_at} (synced through {last_synced})"
                    ),
                    Err(e) => panic!("get after recovery: {e:?}"),
                }
            }
        }
        Err(_) => assert!(
            last_synced < 0,
            "keyspace with synced data vanished after cut at {cut_at}"
        ),
    }
    crashed
}

#[test]
fn power_cut_mid_staged_batch_sweep() {
    // The run costs ~23 flash ops (creation, then WAL pages per sync):
    // these positions land cuts in creation, mid-fsync and between
    // syncs while the accelerator holds staged pairs and pending acks.
    let mut crashes = 0;
    for (i, cut_at) in [2u64, 4, 7, 11, 15, 20].into_iter().enumerate() {
        if run_power_cut(cut_at, 4200 + i as u64) {
            crashes += 1;
        }
    }
    assert!(
        crashes >= 2,
        "sweep must actually exercise mid-batch cuts, got {crashes}"
    );
}

/// Pipelined window over a device with seeded transient faults: 200
/// puts submitted in order, claimed in *reverse*; each completion must
/// match its own command (retries included), and the data must land.
#[test]
fn out_of_order_completions_match_under_seeded_faults() {
    let mut plan = FaultPlan::none().with_error_prob(0.03);
    plan.seed = 9002;
    let t = Stack::new(plan);
    let clock = Arc::new(VirtualClock::new());
    let qp = QueuePair::new(
        Arc::clone(&t.dev) as Arc<dyn DeviceHandler>,
        Arc::clone(&t.ledger),
    )
    .with_pipeline(Arc::clone(&clock), 16, 4, None);
    let win = InflightWindow::new(qp, RetryPolicy::default(), Some(clock));
    let ks = match win.call(None, KvCommand::CreateKeyspace { name: "ooo".into() }) {
        Ok(KvResponse::Created { ks }) => ks,
        other => panic!("create: {other:?}"),
    };
    let mut ops = Vec::new();
    for i in 0..200u32 {
        let k = key_for(i);
        let v = value_for(&k);
        ops.push(win.submit(
            None,
            KvCommand::Put {
                ks,
                key: k,
                value: v,
            },
        ));
    }
    for op in ops.into_iter().rev() {
        match win.wait(op) {
            Ok(KvResponse::PutOk) => {}
            other => panic!("put under faults: {other:?}"),
        }
    }
    // Every pair matched its own completion: the values must all be
    // present and byte-exact despite retries and reordering. Gets need
    // a compacted keyspace; seal fault-free.
    t.zns.nand().set_fault_injector(None);
    let job = match win.call(None, KvCommand::Compact { ks }) {
        Ok(KvResponse::JobStarted { job }) => job,
        other => panic!("compact: {other:?}"),
    };
    loop {
        t.dev.run_pending_jobs();
        match win.call(None, KvCommand::PollJob { job }) {
            Ok(KvResponse::Job {
                state: JobState::Done,
            }) => break,
            Ok(KvResponse::Job {
                state: JobState::Failed(e),
            }) => panic!("compaction failed: {e}"),
            Ok(KvResponse::Job { .. }) => {}
            other => panic!("poll: {other:?}"),
        }
    }
    for i in 0..200u32 {
        let k = key_for(i);
        match win.call(None, KvCommand::Get { ks, key: k.clone() }) {
            Ok(KvResponse::Value(v)) => assert_eq!(v, value_for(&k), "pair {i}"),
            other => panic!("get {i}: {other:?}"),
        }
    }
}

/// One seeded pipelined ingest run: returns (final virtual time, every
/// completion latency in claim order).
fn ingest_schedule(seed: u64) -> (u64, Vec<u64>) {
    let mut plan = FaultPlan::none().with_error_prob(0.02);
    plan.seed = seed;
    let t = Stack::new(plan);
    let clock = Arc::new(VirtualClock::new());
    let qp = QueuePair::new(
        Arc::clone(&t.dev) as Arc<dyn DeviceHandler>,
        Arc::clone(&t.ledger),
    )
    .with_pipeline(Arc::clone(&clock), 16, 4, None);
    let win = InflightWindow::new(qp, RetryPolicy::default(), Some(Arc::clone(&clock)));
    match win.call(None, KvCommand::CreateKeyspace { name: "det".into() }) {
        Ok(KvResponse::Created { ks }) => {
            let mut ops = Vec::new();
            for i in 0..150u32 {
                let k = key_for(i);
                let v = value_for(&k);
                ops.push(win.submit(
                    None,
                    KvCommand::Put {
                        ks,
                        key: k,
                        value: v,
                    },
                ));
            }
            for op in ops {
                match win.wait(op) {
                    Ok(KvResponse::PutOk) => {}
                    other => panic!("put: {other:?}"),
                }
            }
        }
        other => panic!("create: {other:?}"),
    }
    (clock.now_ns(), win.completion_latencies())
}

#[test]
fn same_seed_yields_the_same_completion_schedule() {
    let a = ingest_schedule(1337);
    let b = ingest_schedule(1337);
    assert_eq!(a, b, "pipelined completion schedule must be deterministic");
    assert!(!a.1.is_empty() && a.0 > 0);
}
