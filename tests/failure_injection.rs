//! Failure-injection and misuse tests: the system must fail cleanly and
//! loudly, never corrupt state, and keep working after errors.

use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{Bound, DeviceHandler, KvStatus, SecondaryIndexSpec, SecondaryKeyType};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::IoLedger;
use kvcsd_client::{ClientError, KvCsd};

fn tiny_device(blocks_per_channel: u32) -> (Arc<KvCsdDevice>, KvCsd) {
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig {
            zone_blocks: 1,
            max_open_zones: 1 << 16,
        },
    ));
    let dev = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig {
            cluster_width: 4,
            soc_dram_bytes: 16 << 20,
            seed: 11,
            ..DeviceConfig::default()
        },
    ));
    let client = KvCsd::connect(Arc::clone(&dev) as Arc<dyn DeviceHandler>, ledger);
    (dev, client)
}

#[test]
fn state_machine_rejects_out_of_order_operations() {
    let (dev, client) = tiny_device(512);
    let ks = client.create_keyspace("strict").unwrap();

    // Query before any write: EMPTY is not queryable.
    assert!(matches!(
        ks.get(b"x"),
        Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
    ));

    ks.put(b"a", b"1").unwrap();
    // Query while WRITABLE: rejected.
    assert!(matches!(
        ks.range(Bound::Unbounded, Bound::Unbounded, None),
        Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
    ));
    // Secondary index before compaction: rejected synchronously.
    let spec = SecondaryIndexSpec {
        name: "s".into(),
        value_offset: 0,
        value_len: 4,
        key_type: SecondaryKeyType::U32,
    };
    assert!(matches!(
        ks.build_secondary_index(spec),
        Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
    ));

    ks.compact().unwrap();
    // Writes during COMPACTING: rejected.
    assert!(matches!(
        ks.put(b"b", b"2"),
        Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
    ));
    // Double compaction: rejected.
    assert!(matches!(
        ks.compact(),
        Err(ClientError::Device(KvStatus::BadKeyspaceState { .. }))
    ));

    dev.run_pending_jobs();
    // After COMPACTED, the data is all there despite the misuse attempts.
    assert_eq!(ks.get(b"a").unwrap(), b"1");
    assert!(ks.get(b"b").unwrap_err().is_not_found());
}

#[test]
fn device_full_fails_cleanly_and_delete_recovers_space() {
    // 16 channels x 8 blocks x 1-block zones = 128 zones, a handful of
    // clusters' worth.
    let (dev, client) = tiny_device(8);
    let ks = client.create_keyspace("hog").unwrap();
    let mut i = 0u64;
    let err = loop {
        match ks.put(format!("k{i:012}").as_bytes(), &[7u8; 4096]) {
            Ok(()) => i += 1,
            Err(e) => break e,
        }
        assert!(i < 100_000, "device must eventually fill");
    };
    assert!(matches!(err, ClientError::Device(KvStatus::DeviceFull)));

    // The keyspace is still deletable, and afterwards the device works.
    ks.delete().unwrap();
    let ks2 = client.create_keyspace("after").unwrap();
    ks2.put(b"k", b"v").unwrap();
    ks2.compact().unwrap();
    dev.run_pending_jobs();
    assert_eq!(ks2.get(b"k").unwrap(), b"v");
}

#[test]
fn unknown_names_and_ids_error() {
    let (_dev, client) = tiny_device(256);
    assert!(matches!(
        client.open_keyspace("ghost"),
        Err(ClientError::Device(KvStatus::KeyspaceNotFound))
    ));
    let ks = client.create_keyspace("real").unwrap();
    ks.clone().delete().unwrap();
    // The stale session handle now errors cleanly.
    assert!(matches!(
        ks.put(b"k", b"v"),
        Err(ClientError::Device(KvStatus::KeyspaceNotFound))
    ));
}

#[test]
fn bad_payloads_are_rejected() {
    let (_dev, client) = tiny_device(256);
    let ks = client.create_keyspace("b").unwrap();
    // Empty keys are invalid.
    assert!(ks.put(b"", b"v").is_err());
    // And the keyspace still works afterwards.
    ks.put(b"ok", b"v").unwrap();
}

#[test]
fn failed_sidx_spec_reports_and_preserves_keyspace() {
    let (dev, client) = tiny_device(512);
    let ks = client.create_keyspace("specs").unwrap();
    ks.put(b"key", &[1u8; 8]).unwrap();
    ks.compact().unwrap();
    dev.run_pending_jobs();

    // Width mismatch caught synchronously.
    assert!(matches!(
        ks.build_secondary_index(SecondaryIndexSpec {
            name: "bad".into(),
            value_offset: 0,
            value_len: 3,
            key_type: SecondaryKeyType::F32,
        }),
        Err(ClientError::Device(KvStatus::BadIndexSpec))
    ));

    // A spec beyond the value bounds builds an empty index (values are
    // skipped, not fatal) and queries on it return nothing.
    ks.build_secondary_index(SecondaryIndexSpec {
        name: "short".into(),
        value_offset: 100,
        value_len: 4,
        key_type: SecondaryKeyType::U32,
    })
    .unwrap();
    dev.run_pending_jobs();
    let got = ks
        .sidx_range("short", Bound::Unbounded, Bound::Unbounded, None)
        .unwrap();
    assert!(got.is_empty());
    // Primary data untouched.
    assert_eq!(ks.get(b"key").unwrap(), vec![1u8; 8]);
}

#[test]
fn duplicate_keyspace_names_rejected_without_leaking() {
    let (dev, client) = tiny_device(256);
    let zones0 = dev.zone_manager().free_zones();
    client.create_keyspace("dup").unwrap();
    for _ in 0..5 {
        assert!(matches!(
            client.create_keyspace("dup"),
            Err(ClientError::Device(KvStatus::KeyspaceExists))
        ));
    }
    // Failed creations must not consume zones.
    assert_eq!(dev.zone_manager().free_zones(), zones0);
    assert_eq!(client.list_keyspaces().unwrap().len(), 1);
}
