//! End-to-end overload-control harness.
//!
//! Drives the client → device stack through seeded open-loop bursts with
//! deliberately tight admission watermarks and asserts the overload
//! contract of DESIGN.md §10:
//!
//! * write stalls engage at the high watermark and release below the low
//!   one (hysteresis: a clean engage → drain → release cycle, no flap);
//! * queries keep serving while writes are stalled;
//! * no deadline-carrying operation ever completes after its deadline;
//! * the same seed replays to the identical sequence of admission
//!   decisions, charges and counters;
//! * a device driven to space exhaustion degrades the victim keyspace to
//!   READ_ONLY instead of panicking, keeps every acknowledged pair, and
//!   recovers to COMPACTED once space is reclaimed — across power cycles.
//!
//! All waiting is simulated: stalls and retry backoff charge the shared
//! [`VirtualClock`], never a wall-clock sleep.
//!
//! The `fast_` tests are the CI subset (run alongside the torture subset
//! in the debug profile, lock-order detector armed); the rest ride in the
//! full `cargo test` sweep.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd::device::{AdmissionConfig, DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{Bound, DeviceHandler, JobState, KeyspaceState, KvStatus};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::{IoLedger, VirtualClock, XorShift64};
use kvcsd_client::{ClientError, KvCsd, RetryPolicy};

/// Tight watermarks so a few hundred small puts cross every band. DRAM
/// thresholds sit high enough that the 192 KiB ingest buffers never trip
/// them — in these tests pressure comes from compaction debt and the job
/// queue, which are exactly reproducible.
fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        dram_high: 0.90,
        dram_low: 0.85,
        dram_reject: 0.97,
        max_pending_jobs: 2,
        debt_slowdown_bytes: 8 << 10,
        debt_stall_bytes: 32 << 10,
        debt_reject_bytes: 128 << 10,
        slowdown_ns: 1_000,
        stall_ns: 10_000,
    }
}

struct Bed {
    dev: Arc<KvCsdDevice>,
    client: KvCsd,
    clock: Arc<VirtualClock>,
    ledger: Arc<IoLedger>,
}

fn testbed(admission: AdmissionConfig, seed: u64) -> Bed {
    let sim = SimConfig::default();
    let geom = FlashGeometry {
        channels: 8,
        blocks_per_channel: 256,
        pages_per_block: 16,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &sim.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let clock = Arc::new(VirtualClock::new());
    let dev = Arc::new(KvCsdDevice::new(
        zns,
        sim.cost,
        DeviceConfig {
            cluster_width: 8,
            soc_dram_bytes: 8 << 20,
            seed,
            admission,
            clock: Some(Arc::clone(&clock)),
            ..DeviceConfig::default()
        },
    ));
    // No automatic retries: the harness wants to observe every raw
    // Stalled/Busy/DeadlineExceeded status the device hands back.
    let client = KvCsd::connect(
        Arc::clone(&dev) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    )
    .with_retry_policy(RetryPolicy::none())
    .with_clock(Arc::clone(&clock));
    Bed {
        dev,
        client,
        clock,
        ledger,
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

fn value(i: u32, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len.max(8)];
    v[..4].copy_from_slice(&i.to_le_bytes());
    v
}

/// Stalls engage at the debt high watermark, persist while pressure stays
/// above the low one, and release once it drops — while queries keep
/// serving throughout. The CI fast path for tentpole property 1.
#[test]
fn fast_write_stalls_engage_and_release() {
    let bed = testbed(tight_admission(), 7);

    // A small compacted keyspace to prove reads survive the storm.
    let warm = bed.client.create_keyspace("warm").unwrap();
    for i in 0..8 {
        warm.put(&key(i), &value(i, 64)).unwrap();
    }
    warm.compact().unwrap();
    bed.dev.run_pending_jobs();
    assert_eq!(warm.get(&key(3)).unwrap(), value(3, 64));

    // Open-loop burst into one keyspace: 256 B values pile up compaction
    // debt until the stall band engages.
    let burst = bed.client.create_keyspace("burst").unwrap();
    let mut admitted = 0u32;
    let mut stalled = 0u32;
    for i in 0..1_000u32 {
        match burst.put(&key(i), &value(i, 256)) {
            Ok(()) => {
                assert_eq!(
                    stalled, 0,
                    "a write was admitted after the stall band engaged \
                     while debt kept rising"
                );
                admitted += 1;
            }
            Err(ClientError::Device(KvStatus::Stalled)) => stalled += 1,
            Err(e) => panic!("unexpected error under burst: {e:?}"),
        }
        if stalled >= 5 {
            break;
        }
    }
    assert!(
        admitted > 0 && stalled >= 5,
        "{admitted} ok / {stalled} stalled"
    );
    assert!(bed.dev.admission_gate().is_engaged());
    assert!(bed.ledger.custom("dev_admission_stalls") >= u64::from(stalled));
    assert!(bed.ledger.custom("dev_admission_slowdowns") > 0);
    // Stall time was charged to the virtual clock, never slept.
    let waited = bed.ledger.custom("dev_admission_wait_ns");
    assert!(waited > 0);
    assert!(bed.clock.now_ns() >= waited);

    // Queries keep serving while the stall band is engaged.
    assert_eq!(warm.get(&key(3)).unwrap(), value(3, 64));

    // Drain: compact the debt-laden keyspace, then a write against a
    // zero-debt keyspace samples below the low watermark and releases.
    burst.compact().unwrap();
    bed.dev.run_pending_jobs();
    let fresh = bed.client.create_keyspace("fresh").unwrap();
    fresh.put(b"k", b"v").unwrap();
    assert!(
        !bed.dev.admission_gate().is_engaged(),
        "stall band must release once pressure drops below the low watermark"
    );
    // And the burst keyspace came out queryable: nothing admitted was lost.
    for i in 0..admitted {
        assert_eq!(burst.get(&key(i)).unwrap(), value(i, 256));
    }
}

/// The bounded job queue rejects work (writes and submissions both) with
/// `Busy` once full, and admits again after draining.
#[test]
fn fast_full_job_queue_rejects_then_drains() {
    let bed = testbed(tight_admission(), 11);
    let k1 = bed.client.create_keyspace("k1").unwrap();
    let k2 = bed.client.create_keyspace("k2").unwrap();
    let k3 = bed.client.create_keyspace("k3").unwrap();
    for ks in [&k1, &k2, &k3] {
        ks.put(b"a", b"1").unwrap();
    }
    // Fill the 2-slot queue without running anything.
    k1.compact().unwrap();
    k2.compact().unwrap();
    // Writes and further submissions now bounce with Busy.
    assert_eq!(
        k3.put(b"b", b"2").unwrap_err(),
        ClientError::Device(KvStatus::Busy)
    );
    assert_eq!(
        k3.compact().unwrap_err(),
        ClientError::Device(KvStatus::Busy)
    );
    assert!(bed.ledger.custom("dev_admission_rejects") >= 2);
    // Busy is a back-off-and-retry signal, not a failure.
    assert!(ClientError::Device(KvStatus::Busy).is_retryable());
    // Drain the queue: the same commands are admitted again.
    bed.dev.run_pending_jobs();
    k3.put(b"b", b"2").unwrap();
    let job = k3.compact().unwrap();
    bed.dev.run_pending_jobs();
    assert_eq!(job.poll().unwrap(), JobState::Done);
}

/// Tentpole property 2, seeded open-loop: no deadline-carrying operation
/// ever completes after its deadline — expired budgets surface as
/// `DeadlineExceeded`, and every success lands strictly inside its budget.
#[test]
fn fast_deadlined_ops_never_complete_past_their_deadline() {
    let bed = testbed(tight_admission(), 13);
    let reads = bed.client.create_keyspace("reads").unwrap();
    for i in 0..16 {
        reads.put(&key(i), &value(i, 64)).unwrap();
    }
    reads.compact().unwrap();
    bed.dev.run_pending_jobs();
    let writes = bed.client.create_keyspace("writes").unwrap();

    let mut rng = XorShift64::new(0xDEAD);
    let (mut ok, mut expired, mut overloaded) = (0u32, 0u32, 0u32);
    for i in 0..400u32 {
        // Budgets straddle the slowdown (1 µs) and stall (10 µs) charges,
        // so some ops expire exactly because admission charged them.
        let budget = rng.next_below(20_000);
        let deadline = bed.clock.now_ns() + budget;
        let res = if rng.next_below(4) == 0 {
            reads.with_deadline(deadline).get(&key(i % 16)).map(drop)
        } else {
            writes.with_deadline(deadline).put(&key(i), &value(i, 200))
        };
        match res {
            Ok(()) => {
                ok += 1;
                assert!(
                    bed.clock.now_ns() < deadline,
                    "op {i} completed at {} ns, past its deadline {deadline} ns",
                    bed.clock.now_ns()
                );
            }
            Err(ClientError::Device(KvStatus::DeadlineExceeded)) => expired += 1,
            Err(ClientError::Device(KvStatus::Stalled | KvStatus::Busy)) => overloaded += 1,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        // Open loop: time marches on regardless of per-op outcomes.
        bed.clock.advance(rng.next_below(2_000));
    }
    assert!(ok > 0, "no deadlined op ever succeeded");
    assert!(expired > 0, "no deadline ever expired (budgets too lax)");
    assert!(ok + expired + overloaded == 400);
}

/// A compaction job whose deadline expires before it runs fails cleanly:
/// the keyspace lands in DEGRADED with its sealed logs intact, and a
/// fresh COMPACT without a deadline recovers every pair.
#[test]
fn expired_job_deadline_degrades_then_recovers() {
    let bed = testbed(AdmissionConfig::permissive(), 17);
    let ks = bed.client.create_keyspace("slow").unwrap();
    for i in 0..64 {
        ks.put(&key(i), &value(i, 128)).unwrap();
    }
    let job = ks
        .with_deadline(bed.clock.now_ns() + 500)
        .compact()
        .unwrap();
    bed.clock.advance(1_000); // the budget expires while the job queues
    bed.dev.run_pending_jobs();
    assert!(
        matches!(job.poll().unwrap(), JobState::Failed(_)),
        "expired job must fail, not silently complete"
    );
    let (_, state) = bed.client.open_keyspace("slow").unwrap();
    assert_eq!(state, KeyspaceState::Degraded);
    // Recovery: a fresh budget-free compact re-enters from the sealed logs.
    let retry = ks.compact().unwrap();
    bed.dev.run_pending_jobs();
    assert_eq!(retry.poll().unwrap(), JobState::Done);
    for i in 0..64 {
        assert_eq!(ks.get(&key(i)).unwrap(), value(i, 128));
    }
}

/// One seeded open-loop burst mixing puts, gets, compactions and
/// deadlines; returns everything observable about admission so runs can
/// be compared bit-for-bit.
fn run_burst(seed: u64) -> (Vec<u8>, [u64; 4], u64) {
    let bed = testbed(tight_admission(), seed);
    // One long-lived ingest keyspace piles up compaction debt (the stall
    // driver); throwaway keyspaces get compactions queued against them
    // without draining (the job-queue driver).
    let w = bed.client.create_keyspace("w").unwrap();
    let mut rng = XorShift64::new(seed ^ 0x5EED);
    let mut trace = Vec::with_capacity(600);
    for i in 0..600u32 {
        let res = match rng.next_below(16) {
            0 => (|| {
                let c = bed.client.create_keyspace(&format!("c{i}"))?;
                c.put(b"k", b"v")?;
                c.compact().map(drop)
            })(),
            1 => {
                bed.dev.run_pending_jobs();
                Ok(())
            }
            2 | 3 => w
                .with_deadline(bed.clock.now_ns() + rng.next_below(30_000))
                .put(&key(i), &value(i, 256 + rng.next_below(768) as usize)),
            _ => w.put(&key(i), &value(i, 256 + rng.next_below(768) as usize)),
        };
        trace.push(match res {
            Ok(()) => 0u8,
            Err(ClientError::Device(KvStatus::Stalled)) => 1,
            Err(ClientError::Device(KvStatus::Busy)) => 2,
            Err(ClientError::Device(KvStatus::DeadlineExceeded)) => 3,
            Err(ClientError::Device(KvStatus::BadKeyspaceState { .. })) => 4,
            Err(ClientError::Device(_)) => 5,
            Err(e) => panic!("unexpected error in burst: {e:?}"),
        });
        bed.clock.advance(rng.next_below(500));
    }
    let counters = [
        bed.ledger.custom("dev_admission_slowdowns"),
        bed.ledger.custom("dev_admission_stalls"),
        bed.ledger.custom("dev_admission_rejects"),
        bed.ledger.custom("dev_admission_wait_ns"),
    ];
    (trace, counters, bed.clock.now_ns())
}

/// Tentpole property 3: the same seed replays to identical admission
/// decisions, identical charges, and an identical final clock.
#[test]
fn fast_same_seed_same_admission_decisions() {
    let (t1, c1, end1) = run_burst(42);
    let (t2, c2, end2) = run_burst(42);
    assert_eq!(t1, t2, "admission decision traces diverged");
    assert_eq!(c1, c2, "admission counters diverged");
    assert_eq!(end1, end2, "final clocks diverged");
    // The burst actually exercised the machinery it replays.
    assert!(t1.contains(&1), "no stall in the burst");
    assert!(c1[0] > 0, "no slowdown in the burst");
}

/// Tentpole property 4: a device driven to space exhaustion degrades the
/// victim keyspace to READ_ONLY (typed, fail-fast writes; no panic; no
/// acknowledged pair lost), survives a power cycle in that state, and
/// recovers to COMPACTED once space is reclaimed.
#[test]
fn device_full_degrades_to_read_only_and_recovers() {
    // A deliberately tiny SSD: 2 channels x 16 blocks x 4 pages x 4 KiB
    // = 512 KiB raw, 32 single-block zones (2 reserved for metadata).
    let sim = SimConfig::default();
    let geom = FlashGeometry {
        channels: 2,
        blocks_per_channel: 16,
        pages_per_block: 4,
        page_bytes: 4096,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &sim.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig {
            zone_blocks: 1,
            max_open_zones: 1 << 16,
        },
    ));
    let clock = Arc::new(VirtualClock::new());
    let cfg = DeviceConfig {
        cluster_width: 2,
        soc_dram_bytes: 8 << 20,
        seed: 19,
        admission: AdmissionConfig::permissive(),
        clock: Some(Arc::clone(&clock)),
        ..DeviceConfig::default()
    };
    let dev = Arc::new(KvCsdDevice::new(
        Arc::clone(&zns),
        sim.cost.clone(),
        cfg.clone(),
    ));
    let connect = |dev: &Arc<KvCsdDevice>| {
        KvCsd::connect(
            Arc::clone(dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        )
        .with_retry_policy(RetryPolicy::none())
    };
    let client = connect(&dev);

    // A filler keyspace eats most of the device; deleting it later is how
    // space gets reclaimed.
    let filler = client.create_keyspace("filler").unwrap();
    for i in 0..140u32 {
        filler
            .put(&key(i), &value(i, 2048))
            .expect("filler sized to fit");
    }

    // The victim ingests until the flash runs dry. Every acknowledged
    // pair is tracked — none may be lost.
    let victim = client.create_keyspace("victim").unwrap();
    let mut acked: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut full_err = None;
    for i in 1000..3000u32 {
        let (k, v) = (key(i), value(i, 512));
        match victim.put(&k, &v) {
            Ok(()) => {
                acked.insert(k, v);
            }
            Err(e) => {
                full_err = Some(e);
                break;
            }
        }
    }
    let full_err = full_err.expect("tiny device never filled up");
    assert!(
        full_err.is_degraded(),
        "exhaustion must surface as a degraded-mode error, got {full_err:?}"
    );
    assert!(!acked.is_empty(), "victim never ingested anything");

    // Graceful degradation: the victim froze to READ_ONLY, and further
    // writes fail fast with a typed state error.
    let (_, state) = client.open_keyspace("victim").unwrap();
    assert_eq!(state, KeyspaceState::ReadOnly);
    let err = victim.put(b"late", b"write").unwrap_err();
    assert_eq!(
        err,
        ClientError::Device(KvStatus::BadKeyspaceState {
            state: "READ_ONLY",
            op: "put",
        })
    );
    assert!(err.is_degraded() && !err.is_fatal());
    assert!(ledger.custom("dev_keyspaces_readonly") >= 1);

    // The frozen state survives a power cycle: the seal was persisted.
    drop((client, filler, victim));
    let dev = Arc::new(
        KvCsdDevice::reopen(Arc::clone(&zns), sim.cost.clone(), cfg.clone())
            .expect("reopen of a full device must succeed"),
    );
    dev.run_pending_jobs();
    let client = connect(&dev);
    let (victim, state) = client.open_keyspace("victim").unwrap();
    assert_eq!(state, KeyspaceState::ReadOnly, "freeze lost across reopen");

    // Reclaim space, then recover the victim through a fresh compaction.
    let (filler, _) = client.open_keyspace("filler").unwrap();
    filler.delete().unwrap();
    let job = victim.compact().unwrap();
    dev.run_pending_jobs();
    assert_eq!(
        job.poll().unwrap(),
        JobState::Done,
        "re-compaction after space reclaim must succeed"
    );
    let (_, state) = client.open_keyspace("victim").unwrap();
    assert_eq!(state, KeyspaceState::Compacted);
    for (k, v) in &acked {
        assert_eq!(&victim.get(k).unwrap(), v, "acknowledged pair {k:?} lost");
    }
    let scan = victim
        .range(Bound::Unbounded, Bound::Unbounded, None)
        .unwrap();
    assert_eq!(scan.len(), acked.len());

    // And the recovery itself is durable: reopen once more and re-check.
    drop((client, victim));
    let dev = Arc::new(
        KvCsdDevice::reopen(Arc::clone(&zns), sim.cost, cfg).expect("second reopen must succeed"),
    );
    dev.run_pending_jobs();
    let client = connect(&dev);
    let (victim, state) = client.open_keyspace("victim").unwrap();
    assert_eq!(state, KeyspaceState::Compacted);
    for (k, v) in acked.iter().take(8).chain(acked.iter().rev().take(8)) {
        assert_eq!(&victim.get(k).unwrap(), v, "pair {k:?} lost after reopen");
    }
}
