//! Self-tests for the happens-before race detector (DESIGN.md §11).
//!
//! The detector only exists in debug builds, and `KVCSD_RACE=off`
//! disables it even there, so every test that expects a report first
//! checks [`detector_on`] and degrades to a no-op otherwise — the same
//! binary stays green under `--release` and under an explicit opt-out.
//!
//! The deliberately racy fixtures use a plain `std::sync::mpsc` channel
//! to force a *real-time* ordering the detector cannot see: the channel
//! is not a `kvcsd::sim::sync` primitive, so it transfers no vector
//! clock, and the second access is guaranteed to observe the first as
//! unordered. That makes the "must panic" outcome deterministic instead
//! of a timing-dependent maybe.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use kvcsd::sim::perturb::PerturbSchedule;
use kvcsd::sim::sync::{spawn, Mutex, Shared};

/// True when the debug-build race detector is active for this process.
fn detector_on() -> bool {
    cfg!(debug_assertions)
        && !matches!(
            std::env::var("KVCSD_RACE").ok().as_deref(),
            Some("off") | Some("0")
        )
}

/// Two threads, one `Shared` cell, no lock and no `spawn`/`join` edge:
/// the detector must panic and the report must name both access sites.
#[test]
fn unordered_writes_panic_with_both_sites() {
    if !detector_on() {
        return;
    }
    let cell = Arc::new(Shared::new(0u64));
    let (tx, rx) = mpsc::channel();
    let racer = {
        let cell = Arc::clone(&cell);
        // kvcsd-check: allow(shim-spawn) -- deliberately-racy fixture: a shim spawn would add the very happens-before edge this test must not have
        thread::Builder::new()
            .name("racer".into())
            .spawn(move || {
                *cell.write() = 1;
                tx.send(()).unwrap();
            })
            .unwrap()
    };
    // The channel guarantees the racer's write already happened in real
    // time; the detector still (correctly) sees it as unordered.
    rx.recv().unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        *cell.write() = 2;
    }));
    let _ = racer.join();
    let err = caught.expect_err("unordered writes must be reported");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(
        msg.contains("data race detected"),
        "unexpected report: {msg}"
    );
    assert!(msg.contains("thread 'racer'"), "missing racer site: {msg}");
    let sites = msg.matches("tests/race.rs:").count();
    assert!(
        sites >= 2,
        "report must name both access sites in this file, found {sites}: {msg}"
    );
}

/// The lock-protected twin of the racy fixture: identical shape, but both
/// accesses happen under one shim mutex, whose release→acquire clock
/// transfer orders them. Must stay silent.
#[test]
fn lock_protected_twin_is_silent() {
    let cell = Arc::new(Shared::new(0u64));
    let guard = Arc::new(Mutex::new(()));
    let (tx, rx) = mpsc::channel();
    let worker = {
        let cell = Arc::clone(&cell);
        let guard = Arc::clone(&guard);
        // kvcsd-check: allow(shim-spawn) -- the lock-protected twin must mirror the racy fixture's raw spawn so only the mutex orders the accesses
        thread::spawn(move || {
            let _g = guard.lock();
            *cell.write() = 1;
            drop(_g);
            tx.send(()).unwrap();
        })
    };
    rx.recv().unwrap();
    {
        let _g = guard.lock();
        *cell.write() += 1;
    }
    worker.join().unwrap();
    let _g = guard.lock();
    assert_eq!(*cell.read(), 2);
}

/// `update`/`get` are self-synchronized: many std threads hammering one
/// cell with no external lock is clean by construction and lossless.
#[test]
fn update_get_needs_no_external_ordering() {
    let cell = Arc::new(Shared::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let cell = Arc::clone(&cell);
            // kvcsd-check: allow(shim-spawn) -- proves self-synchronized ops need no spawn/join edge; raw std threads are the point
            thread::spawn(move || {
                for _ in 0..500 {
                    cell.update(|v| *v += 1);
                    let _ = cell.get();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.get(), 2000);
}

/// `kvcsd::sim::sync::spawn`/`join` carry vector clocks, so plain
/// `read`/`write` accesses separated by a join are ordered without any
/// lock.
#[test]
fn spawn_join_orders_plain_accesses() {
    let cell = Arc::new(Shared::new(0u64));
    let child = {
        let cell = Arc::clone(&cell);
        spawn(move || {
            *cell.write() = 7;
        })
    };
    child.join().unwrap();
    assert_eq!(*cell.read(), 7);
}

/// Same seed ⇒ same perturbation schedule, per lane; different seeds and
/// different lanes diverge. This is what makes a `KVCSD_PERTURB` failure
/// reproducible from the seed printed in CI.
#[test]
fn perturbation_schedule_is_deterministic_per_seed() {
    let draw = |seed, lane| {
        let mut s = PerturbSchedule::new(seed, lane);
        (0..2048).map(|_| s.next_decision()).collect::<Vec<_>>()
    };
    assert_eq!(draw(42, 0), draw(42, 0), "same seed+lane must replay");
    assert_ne!(draw(42, 0), draw(43, 0), "seeds must decorrelate");
    assert_ne!(draw(42, 0), draw(42, 1), "lanes must decorrelate");
    assert!(
        draw(42, 0).iter().any(|d| d.is_some()),
        "schedule never yields"
    );
}
