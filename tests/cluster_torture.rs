//! Fleet-wide torture harness for the sharded cluster.
//!
//! Drives routed client sessions against a [`ClusterRouter`] while a
//! seeded [`FaultPlan`] cuts power to shard primaries — the cut op-count
//! is swept so deaths land in every phase: ingest, the synchronous seal,
//! mid-compaction (the idempotent-seal case), index builds and reads.
//! After every promotion the harness asserts the cluster recovery
//! contract:
//!
//! * a keyspace whose COMPACT was acknowledged (seal + artifact ship)
//!   survives any single-primary death: every one of its pairs stays
//!   readable, byte-exact, after failover — no half-visible keys;
//! * scatter-gather RANGE over the merged fleet stays globally
//!   key-ordered with no duplicates across shards;
//! * a stalled/busy shard charges virtual-clock latency only to its own
//!   keyspace ranges, never to healthy shards;
//! * the same plan seed reproduces the identical failover schedule
//!   (shard order, generations, replayed-artifact counts).

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd::cluster::{ClusterConfig, ClusterRouter, FailoverEvent, ShardHealth, ShardStrategy};
use kvcsd::device::{AdmissionConfig, DeviceConfig};
use kvcsd::proto::{Bound, DeviceHandler, JobState, KvCommand, KvResponse, KvStatus};
use kvcsd::sim::{FaultPlan, IoLedger};
use kvcsd_client::{ClientError, KvCsd};

const SHARDS: u32 = 3;
const PAIRS_PER_BATCH: u32 = 60;
const BATCHES: usize = 3;

/// The value is a pure function of the key, so a torn or half-applied
/// pair that becomes visible is caught by recomputation.
fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut v = vec![0u8; 24];
    for (i, slot) in v.iter_mut().enumerate() {
        *slot = ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8);
    }
    v
}

fn batch_key(batch: usize, attempt: u32, i: u32) -> Vec<u8> {
    format!("b{batch}a{attempt:02}k{i:05}").into_bytes()
}

fn router_with_cut(cut_at: u64, seed: u64) -> Arc<ClusterRouter> {
    Arc::new(ClusterRouter::new(ClusterConfig {
        shards: SHARDS,
        fault_plan: FaultPlan::power_cut_at(cut_at, seed),
        ..ClusterConfig::default()
    }))
}

/// Drive one command through the router, absorbing failover bounces the
/// way the client's fail-fast redirect does.
fn drive(r: &ClusterRouter, mut make: impl FnMut() -> KvCommand) -> Result<KvResponse, KvStatus> {
    for _ in 0..16 {
        match r.handle(make()) {
            KvResponse::Err(KvStatus::FailoverInProgress { .. }) => continue,
            KvResponse::Err(e) => return Err(e),
            resp => return Ok(resp),
        }
    }
    panic!("command did not settle after 16 failover redirects");
}

/// Put a batch of pairs into a fresh keyspace and compact it to the
/// sealed-and-shipped (cluster-durable) state. Returns the keyspace id
/// once every pair verifies readable; retries the whole batch under a
/// new name when a mid-batch primary death ate the volatile portion.
fn commit_batch(r: &ClusterRouter, batch: usize) -> (String, u32, Vec<Vec<u8>>) {
    for attempt in 0..8u32 {
        let name = format!("b{batch}-try{attempt}");
        let ks = match drive(r, || KvCommand::CreateKeyspace { name: name.clone() }) {
            Ok(KvResponse::Created { ks }) => ks,
            Ok(resp) => panic!("create: unexpected {resp:?}"),
            Err(e) => panic!("create failed: {e}"),
        };
        let keys: Vec<Vec<u8>> = (0..PAIRS_PER_BATCH)
            .map(|i| batch_key(batch, attempt, i))
            .collect();
        let mut aborted = false;
        for k in &keys {
            match drive(r, || KvCommand::Put {
                ks,
                key: k.clone(),
                value: value_for(k),
            }) {
                Ok(_) => {}
                // A put can race the promotion of a keyspace that lost
                // volatile data; abandon this attempt.
                Err(_) => {
                    aborted = true;
                    break;
                }
            }
        }
        if !aborted {
            aborted = !compact_to_done(r, ks);
        }
        // Durability gate: only a batch whose pairs ALL verify readable
        // after compaction counts as committed. A death before the seal
        // shipped loses volatile puts — by contract — so that attempt is
        // discarded and redone under a new name.
        if !aborted && keys.iter().all(|k| get_matches(r, ks, k)) {
            return (name, ks, keys);
        }
        let _ = drive(r, || KvCommand::DeleteKeyspace { ks });
    }
    panic!("batch {batch} did not commit in 8 attempts");
}

/// Submit COMPACT and poll to a terminal state. `false` on failure.
fn compact_to_done(r: &ClusterRouter, ks: u32) -> bool {
    let job = match drive(r, || KvCommand::Compact { ks }) {
        Ok(KvResponse::JobStarted { job }) => job,
        _ => return false,
    };
    for _ in 0..64 {
        match drive(r, || KvCommand::PollJob { job }) {
            Ok(KvResponse::Job {
                state: JobState::Done,
            }) => return true,
            Ok(KvResponse::Job {
                state: JobState::Failed(_),
            }) => return false,
            Ok(_) => {}
            Err(_) => return false,
        }
    }
    false
}

fn get_matches(r: &ClusterRouter, ks: u32, key: &[u8]) -> bool {
    matches!(
        drive(r, || KvCommand::Get {
            ks,
            key: key.to_vec(),
        }),
        Ok(KvResponse::Value(v)) if v == value_for(key)
    )
}

/// Committed batches as `(keyspace id, keys)` pairs.
type Committed = Vec<(u32, Vec<Vec<u8>>)>;

/// Run the full batched workload against a cluster whose fault plan cuts
/// power at `cut_at` ops, then kill every still-healthy primary and
/// re-verify the fleet. Returns the committed data and the event log.
fn run_workload(cut_at: u64, seed: u64) -> (Arc<ClusterRouter>, Committed) {
    let r = router_with_cut(cut_at, seed);
    let committed: Committed = (0..BATCHES)
        .map(|b| {
            let (_, ks, keys) = commit_batch(&r, b);
            (ks, keys)
        })
        .collect();
    // Force the remaining primaries through failover too, so the final
    // verification reads every batch entirely from promoted replicas.
    for ix in 0..SHARDS {
        r.kill_shard(ix);
        assert_eq!(
            r.shard_health(ix),
            ShardHealth::Healthy,
            "shard {ix} must come back healthy after promotion"
        );
    }
    (r, committed)
}

fn verify_committed(r: &ClusterRouter, committed: &[(u32, Vec<Vec<u8>>)]) {
    for (ks, keys) in committed {
        // Acked-durability: every pair of every committed batch.
        for k in keys {
            assert!(
                get_matches(r, *ks, k),
                "committed key {:?} lost or damaged after failover",
                String::from_utf8_lossy(k)
            );
        }
        // Scatter-gather RANGE: globally key-ordered, byte-exact, and
        // exactly the committed key set — nothing half-visible.
        let entries = match drive(r, || KvCommand::Range {
            ks: *ks,
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            limit: None,
        }) {
            Ok(KvResponse::Entries(es)) => es,
            other => panic!("range: {other:?}"),
        };
        let want: BTreeMap<Vec<u8>, Vec<u8>> =
            keys.iter().map(|k| (k.clone(), value_for(k))).collect();
        assert_eq!(entries.len(), want.len(), "range cardinality mismatch");
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "merged range must be strictly key-ordered"
        );
        for (k, v) in &entries {
            assert_eq!(
                want.get(k),
                Some(v),
                "half-visible or foreign key {:?}",
                String::from_utf8_lossy(k)
            );
        }
    }
}

#[test]
fn power_cut_sweep_survives_failover_at_every_phase() {
    // Cut points chosen to land in ingest, seal, compaction sort, index
    // read-back and steady-state phases of the batched workload.
    for &cut_at in &[60u64, 140, 300, 520, 900, 1600, 2600, 4200] {
        let (r, committed) = run_workload(cut_at, 0xC0FFEE ^ cut_at);
        verify_committed(&r, &committed);
        // The plan cut plus the final manual sweep: every shard is
        // promoted at least once (twice when the plan got there first,
        // which also exercises the re-seeded replica log), and
        // generations count up per shard without gaps.
        let mut gens: BTreeMap<u32, u32> = BTreeMap::new();
        for ev in r.events() {
            let g = gens.entry(ev.shard).or_insert(0);
            *g += 1;
            assert_eq!(
                ev.generation, *g,
                "cut_at={cut_at}: generations must be per-shard monotonic"
            );
        }
        assert_eq!(
            gens.len() as u32,
            SHARDS,
            "cut_at={cut_at}: every shard must have failed over"
        );
    }
}

#[test]
fn same_seed_reproduces_the_same_failover_schedule() {
    let runs: Vec<Vec<FailoverEvent>> = (0..2)
        .map(|_| {
            let (r, committed) = run_workload(300, 0xDEAD_BEEF);
            verify_committed(&r, &committed);
            r.events()
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "same seed must reproduce the identical failover schedule"
    );
    let other = run_workload(300, 0xFEED_F00D).0.events();
    // Not a hard invariant of the design, but with distinct seeds the
    // replayed-artifact profile almost surely differs somewhere; if this
    // ever flakes the seeds happened to collide and may be changed.
    assert!(
        !other.is_empty(),
        "control run with a different seed must still fail over"
    );
}

#[test]
fn routed_client_sessions_ride_through_failover_with_fail_fast_redirects() {
    let r = Arc::new(ClusterRouter::new(ClusterConfig {
        shards: SHARDS,
        ..ClusterConfig::default()
    }));
    let host_ledger = Arc::new(IoLedger::new(SHARDS, 4096));
    let db = KvCsd::connect(
        Arc::clone(&r) as Arc<dyn DeviceHandler>,
        Arc::clone(&host_ledger),
    );
    let ks = db.create_keyspace("routed").expect("create");
    let keys: Vec<Vec<u8>> = (0..90u32)
        .map(|i| format!("rk{i:05}").into_bytes())
        .collect();
    for k in &keys {
        ks.put(k, &value_for(k)).expect("put");
    }
    let job = ks.compact().expect("compact");
    while !job.is_terminal().expect("poll") {}
    // Cut power behind the router's back: the next routed command makes
    // the router discover the death, answer FailoverInProgress, and the
    // client's retry loop resends immediately to the promoted replica.
    r.shard_injector(0).power_off_now();
    for k in &keys {
        assert_eq!(ks.get(k).expect("get after failover"), value_for(k));
    }
    assert_eq!(r.events().len(), 1, "exactly one promotion");
    assert!(
        host_ledger.custom("client_failover_redirects") >= 1,
        "the client must have taken the fail-fast redirect path"
    );
    // Scatter-gather through the client API too.
    let es = ks
        .range(Bound::Unbounded, Bound::Unbounded, None)
        .expect("range");
    assert_eq!(es.len(), keys.len());
    assert!(es.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn dead_unreplicated_shard_degrades_only_its_own_keyspace_ranges() {
    let r = Arc::new(ClusterRouter::new(ClusterConfig {
        shards: 2,
        replicate: false,
        strategy: ShardStrategy::RangeKeys {
            boundaries: vec![b"m".to_vec()],
        },
        ..ClusterConfig::default()
    }));
    let host_ledger = Arc::new(IoLedger::new(2, 4096));
    let db = KvCsd::connect(
        Arc::clone(&r) as Arc<dyn DeviceHandler>,
        Arc::clone(&host_ledger),
    );
    let ks = db.create_keyspace("split").expect("create");
    for i in 0..40u32 {
        let low = format!("a{i:04}").into_bytes();
        let high = format!("z{i:04}").into_bytes();
        ks.put(&low, &value_for(&low)).expect("put low");
        ks.put(&high, &value_for(&high)).expect("put high");
    }
    let job = ks.compact().expect("compact");
    while !job.is_terminal().expect("poll") {}
    r.kill_shard(1);
    assert_eq!(r.shard_health(1), ShardHealth::Dead);
    // The healthy half keeps serving: range pruned to shard 0 only.
    let es = ks
        .range(
            Bound::Included(b"a".to_vec()),
            Bound::Excluded(b"b".to_vec()),
            None,
        )
        .expect("low range must still work");
    assert_eq!(es.len(), 40);
    // The dead half fails with the typed, non-retryable-but-degraded
    // error — and the client classifies it as degraded, not fatal.
    let err = ks
        .range(Bound::Included(b"z".to_vec()), Bound::Unbounded, None)
        .expect_err("dead shard's range must fail");
    assert!(
        matches!(
            err,
            ClientError::Device(KvStatus::ShardUnavailable { shard: 1 })
                | ClientError::RetriesExhausted {
                    last: KvStatus::ShardUnavailable { shard: 1 },
                    ..
                }
        ),
        "unexpected error: {err:?}"
    );
    assert!(err.is_degraded() && !err.is_fatal());
}

#[test]
fn busy_shard_charges_latency_only_to_its_own_key_ranges() {
    // Tighten the admission gate so compaction debt on the loaded shard
    // charges visible slowdown latency to *its* virtual clock.
    let base = ClusterConfig::default();
    let r = Arc::new(ClusterRouter::new(ClusterConfig {
        shards: 2,
        strategy: ShardStrategy::RangeKeys {
            boundaries: vec![b"m".to_vec()],
        },
        device: DeviceConfig {
            admission: AdmissionConfig {
                debt_slowdown_bytes: 2 << 10,
                debt_stall_bytes: 1 << 20,
                debt_reject_bytes: 8 << 20,
                ..AdmissionConfig::default()
            },
            ..base.device
        },
        ..base
    }));
    let ks = match r.handle(KvCommand::CreateKeyspace {
        name: "skew".into(),
    }) {
        KvResponse::Created { ks } => ks,
        other => panic!("{other:?}"),
    };
    // All data lives below the boundary: shard 0 does real compaction
    // work (clock advances), shard 1 seals an empty keyspace (trivial).
    for i in 0..300u32 {
        let k = format!("a{i:06}").into_bytes();
        match r.handle(KvCommand::Put {
            ks,
            key: k.clone(),
            value: value_for(&k),
        }) {
            KvResponse::PutOk => {}
            other => panic!("{other:?}"),
        }
    }
    assert!(compact_to_done(&r, ks), "compaction must finish");
    let busy = r.shard_clock(0).now_ns();
    let idle = r.shard_clock(1).now_ns();
    assert!(busy > 0, "loaded shard must have charged time");
    assert!(
        idle < busy / 10,
        "idle shard charged {idle} ns vs busy {busy} ns — stall isolation broken"
    );
    // Queries confined to the idle shard's range do not pay the busy
    // shard's latency: they never touch shard 0's clock or ledger.
    let ranges0 = r.shard_ledger(0).custom("dev_ranges");
    let clock0 = r.shard_clock(0).now_ns();
    match r.handle(KvCommand::Range {
        ks,
        lo: Bound::Included(b"z".to_vec()),
        hi: Bound::Unbounded,
        limit: None,
    }) {
        KvResponse::Entries(es) => assert!(es.is_empty()),
        other => panic!("{other:?}"),
    }
    assert_eq!(r.shard_ledger(0).custom("dev_ranges"), ranges0);
    assert_eq!(r.shard_clock(0).now_ns(), clock0);
}
