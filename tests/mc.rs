//! Acceptance tests for kvcsd-mc: bounded-exhaustive verification of the
//! concurrency harnesses and the 2-shard protocol model, plus the
//! explorer's own self-tests (counterexample discovery, replayable
//! traces, DPOR < naive, release no-op).
//!
//! Everything except the release-profile test is debug-only: the
//! controlled scheduler compiles out in release and `check` degrades to
//! a single uncontrolled run.

#![allow(dead_code)]

use kvcsd_mc::{harnesses, FailureKind, McConfig};

#[cfg(debug_assertions)]
fn temp_trace_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kvcsd-mc-{}-{tag}", std::process::id()))
}

#[cfg(debug_assertions)]
#[test]
fn health_promotion_has_exactly_one_winner_under_all_interleavings() {
    let report = harnesses::health_promotion(&McConfig::default());
    report.assert_ok();
    assert!(report.controlled && report.completed);
    assert!(
        report.schedules >= 6,
        "three racing CAS attempts have at least 3! dependent orders, saw {}",
        report.schedules
    );
}

#[cfg(debug_assertions)]
#[test]
fn admission_band_transitions_hold_under_all_interleavings() {
    let report = harnesses::admission_bands(&McConfig::default());
    report.assert_ok();
    assert!(report.controlled && report.completed);
}

#[cfg(debug_assertions)]
#[test]
fn replica_dedup_is_idempotent_under_all_interleavings() {
    let report = harnesses::replica_dedup(&McConfig::default());
    report.assert_ok();
    assert!(report.controlled && report.completed);
    assert!(
        report.schedules >= 100,
        "two concurrent ships share seq counter, bus and receiver state — the schedule \
         space should not collapse (saw {})",
        report.schedules
    );
}

#[cfg(debug_assertions)]
#[test]
fn window_completion_matching_holds_under_all_interleavings() {
    let report = harnesses::window_matching(&McConfig::default());
    report.assert_ok();
    assert!(report.controlled && report.completed);
    assert!(
        report.schedules >= 2,
        "two threads share the window's submit/poll critical section — the schedule \
         space must not collapse (saw {})",
        report.schedules
    );
}

#[cfg(debug_assertions)]
#[test]
fn two_shard_epoch_fence_model_holds_for_all_scripts_to_depth_3() {
    let report = kvcsd_mc::verify_two_shard(3);
    report.assert_ok();
    assert!(
        report.runs >= 40,
        "depth-3 sweep over a 3-letter alphabet should run dozens of scripts, saw {}",
        report.runs
    );
}

#[cfg(debug_assertions)]
#[test]
fn racy_fixture_is_caught_within_bounded_schedules_with_a_replayable_trace() {
    let dir = temp_trace_dir("racy");
    let cfg = McConfig {
        trace_dir: Some(dir.clone()),
        ..McConfig::default()
    };
    let report = harnesses::racy_increment(&cfg);
    let failure = report.failure.as_ref().expect("lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    assert!(
        report.schedules <= 32,
        "a 2-thread lost update must surface within a handful of schedules, took {}",
        report.schedules
    );
    assert!(!failure.trace.steps.is_empty());

    // The trace file is on disk and parses back to the same schedule.
    let path = failure.trace_file.as_ref().expect("trace must be written");
    let loaded = kvcsd_mc::Trace::load(path).expect("trace file must parse");
    assert_eq!(loaded, failure.trace);

    // Replaying the trace reproduces the identical failure in one run.
    let replayed = harnesses::racy_increment_replay(&loaded);
    assert_eq!(replayed.schedules, 1);
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.kind, FailureKind::Panic);
    assert_eq!(rf.message, failure.message, "identical failure on replay");

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(debug_assertions)]
#[test]
fn replay_env_var_short_circuits_exploration() {
    let dir = temp_trace_dir("env");
    let cfg = McConfig {
        trace_dir: Some(dir.clone()),
        ..McConfig::default()
    };
    // Record a counterexample under a name unique to this test, so the
    // env var cannot affect the other tests in this binary.
    let recorded = kvcsd_mc::check("env-replay-fixture", &cfg, harnesses::racy_increment_body);
    let failure = recorded.failure.expect("fixture must fail");
    let path = failure.trace_file.expect("trace must be written");
    assert!(
        recorded.schedules > 1,
        "exploration took multiple schedules"
    );

    std::env::set_var("KVCSD_MC_REPLAY", &path);
    let replayed = kvcsd_mc::check("env-replay-fixture", &cfg, harnesses::racy_increment_body);
    std::env::remove_var("KVCSD_MC_REPLAY");

    assert_eq!(
        replayed.schedules, 1,
        "KVCSD_MC_REPLAY must replay the one traced schedule instead of exploring"
    );
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.message, failure.message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(debug_assertions)]
#[test]
fn dpor_explores_fewer_schedules_than_naive_dfs() {
    let dpor = harnesses::three_locks(&McConfig::default());
    let naive = harnesses::three_locks(&McConfig {
        dpor: false,
        ..McConfig::default()
    });
    dpor.assert_ok();
    naive.assert_ok();
    assert!(dpor.completed && naive.completed);
    assert!(
        dpor.schedules < naive.schedules,
        "DPOR ({}) must beat naive DFS ({}) when one thread's work commutes",
        dpor.schedules,
        naive.schedules
    );
}

#[cfg(debug_assertions)]
#[test]
fn modeled_deadlock_is_reported_without_hanging() {
    use kvcsd_sim::sync::{spawn, Mutex};
    use std::sync::Arc;

    let dir = temp_trace_dir("deadlock");
    let cfg = McConfig {
        trace_dir: Some(dir.clone()),
        ..McConfig::default()
    };
    // Parent holds the lock across join; the child needs it to exit:
    // a deadlock no lock-order cycle analysis can see (single lock).
    let report = kvcsd_mc::check("join-deadlock", &cfg, || {
        let m = Arc::new(Mutex::new(0u32));
        let guard = m.lock();
        let m2 = Arc::clone(&m);
        let child = spawn(move || *m2.lock());
        let _ = child.join();
        drop(guard);
    });
    let failure = report.failure.expect("the deadlock must be modeled");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("mutex-lock") && failure.message.contains("join"),
        "{}",
        failure.message
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(debug_assertions)]
#[test]
fn preemption_bound_restricts_the_explored_space() {
    let full = harnesses::replica_dedup(&McConfig::default());
    let bounded = harnesses::replica_dedup(&McConfig {
        preemption_bound: Some(2),
        ..McConfig::default()
    });
    full.assert_ok();
    bounded.assert_ok();
    assert!(
        bounded.schedules < full.schedules,
        "a preemption bound of 2 must cut the dedup schedule space ({} vs {})",
        bounded.schedules,
        full.schedules
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn release_profile_runs_once_uncontrolled() {
    let report = kvcsd_mc::check("release-noop", &McConfig::default(), || {
        // Nothing shared, nothing scheduled: the release fallback just
        // calls this once on the OS scheduler.
    });
    assert!(!report.controlled);
    assert_eq!(report.schedules, 1);
    assert!(report.failure.is_none());
}
