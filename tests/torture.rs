//! Crash-recovery torture harness.
//!
//! Drives the full client → device → flash stack (ingest with periodic
//! fsync, offloaded compaction, secondary-index build, point/range/sidx
//! queries) while a [`FaultPlan`] cuts power at every k-th flash
//! operation. After every cut the harness reopens the device from flash
//! and asserts the recovery contract:
//!
//! * data acknowledged by a successful `fsync` is never lost;
//! * data that was never synced may vanish, but can never be torn or
//!   half-visible (every surviving pair is byte-exact);
//! * every keyspace that reached COMPACTED stays queryable across any
//!   number of later crashes;
//! * the same plan seed over the same workload reproduces the identical
//!   failure schedule.
//!
//! The cut interval k is swept across a dozen values so cuts land in
//! every phase: metadata appends, WAL flushes, ingest, compaction sorts,
//! index builds, and reads.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{FlashGeometry, NandArray, ZnsConfig, ZonedNamespace};
use kvcsd::proto::{
    Bound, DeviceHandler, JobState, KeyspaceState, KvStatus, SecondaryIndexSpec, SecondaryKeyType,
};
use kvcsd::sim::config::{CostModel, SimConfig};
use kvcsd::sim::{FaultEvent, FaultInjector, FaultPlan, IoLedger};
use kvcsd_client::{ClientError, Keyspace, KvCsd};

const ROUNDS: usize = 2;
const PAIRS: u32 = 220;
const SYNC_EVERY: u32 = 45;
/// Stop injecting new cuts after this many crashes so every run
/// terminates; the workload finishes fault-free past this point.
const MAX_CUTS: u64 = 60;

fn key_for(round: usize, attempt: u32, i: u32) -> Vec<u8> {
    format!("r{round}a{attempt:03}k{i:05}").into_bytes()
}

/// The value is a pure function of the key (32 bytes, trailing f32 for
/// the secondary index), so any torn or bit-damaged pair that becomes
/// visible is caught by recomputing it.
fn value_for(key: &[u8]) -> Vec<u8> {
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut v = vec![0u8; 32];
    for (i, slot) in v.iter_mut().take(28).enumerate() {
        *slot = ((x >> ((i % 8) * 8)) as u8).wrapping_add(i as u8);
    }
    v[28..].copy_from_slice(&((((x >> 17) & 0xFFFF) as f32).to_le_bytes()));
    v
}

fn sidx_spec() -> SecondaryIndexSpec {
    SecondaryIndexSpec {
        name: "tail".into(),
        value_offset: 28,
        value_len: 4,
        key_type: SecondaryKeyType::F32,
    }
}

/// What one torture run observed, for cross-run comparisons.
#[derive(Debug, PartialEq)]
struct Report {
    crashes: u64,
    final_ops: u64,
    events: Vec<FaultEvent>,
    wal_replayed: u64,
    digest: u64,
}

struct Torture {
    cost: CostModel,
    cfg: DeviceConfig,
    ledger: Arc<IoLedger>,
    zns: Arc<ZonedNamespace>,
    inj: Arc<FaultInjector>,
    dev: Arc<KvCsdDevice>,
    client: KvCsd,
    crashes: u64,
    /// Keyspaces that reached COMPACTED, with their full content.
    completed: Vec<(String, Pairs)>,
}

type Pairs = BTreeMap<Vec<u8>, Vec<u8>>;

impl Torture {
    fn new(plan: FaultPlan) -> Self {
        let sim = SimConfig::default();
        let geom = FlashGeometry {
            channels: 8,
            blocks_per_channel: 256,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
        let nand = Arc::new(NandArray::new(geom, &sim.hw, Arc::clone(&ledger)));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 1,
                max_open_zones: 1 << 16,
            },
        ));
        let cfg = DeviceConfig {
            cluster_width: 8,
            soc_dram_bytes: 8 << 20,
            seed: 11,
            wal: true,
            ..DeviceConfig::default()
        };
        let dev = Arc::new(KvCsdDevice::new(
            Arc::clone(&zns),
            sim.cost.clone(),
            cfg.clone(),
        ));
        let client = KvCsd::connect(
            Arc::clone(&dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&ledger),
        );
        let inj = Arc::new(FaultInjector::new(plan));
        zns.nand().set_fault_injector(Some(Arc::clone(&inj)));
        Self {
            cost: sim.cost,
            cfg,
            ledger,
            zns,
            inj,
            dev,
            client,
            crashes: 0,
            completed: Vec::new(),
        }
    }

    fn rearm(&self) {
        if self.crashes < MAX_CUTS {
            self.zns
                .nand()
                .set_fault_injector(Some(Arc::clone(&self.inj)));
        }
    }

    /// Handle an error from a client call. Under a pure power-cut plan the
    /// only expected failure is power loss; transient-noise plans may also
    /// exhaust the client's retry budget. Either way the harness treats it
    /// as a crash: reopen the device from flash, fault-free.
    fn crash(&mut self, err: &ClientError) {
        let expected = matches!(err, ClientError::Device(KvStatus::PowerLoss))
            || matches!(err, ClientError::RetriesExhausted { .. })
            || self.inj.is_powered_off();
        assert!(expected, "unexpected error under torture: {err:?}");
        self.recover();
    }

    /// Power-cycle: reopen the device from its persisted state with faults
    /// disarmed (recovery itself must succeed), re-run any re-enqueued
    /// jobs, and re-check that every COMPACTED keyspace survived.
    fn recover(&mut self) {
        self.crashes += 1;
        self.zns.nand().set_fault_injector(None);
        self.inj.power_restore();
        let dev = KvCsdDevice::reopen(Arc::clone(&self.zns), self.cost.clone(), self.cfg.clone())
            .expect("fault-free recovery must succeed");
        dev.run_pending_jobs();
        self.dev = Arc::new(dev);
        self.client = KvCsd::connect(
            Arc::clone(&self.dev) as Arc<dyn DeviceHandler>,
            Arc::clone(&self.ledger),
        );
        for (name, data) in &self.completed {
            let (ks, state) = self.client.open_keyspace(name).unwrap();
            assert_eq!(
                state,
                KeyspaceState::Compacted,
                "compacted keyspace {name} lost its state after crash {}",
                self.crashes
            );
            // Spot-check content; the full check happens in final_verify.
            if let Some((k, v)) = data.iter().next() {
                assert_eq!(&ks.get(k).unwrap(), v, "{name} lost {k:?}");
            }
            if let Some((k, v)) = data.iter().next_back() {
                assert_eq!(&ks.get(k).unwrap(), v, "{name} lost {k:?}");
            }
        }
    }

    fn open_session(&mut self, name: &str) -> (Keyspace, KeyspaceState) {
        loop {
            match self.client.open_keyspace(name) {
                Ok(x) => return x,
                Err(e) => {
                    self.crash(&e);
                    self.rearm();
                }
            }
        }
    }

    fn create(&mut self, name: &str) -> Keyspace {
        loop {
            match self.client.create_keyspace(name) {
                Ok(ks) => return ks,
                Err(ClientError::Device(KvStatus::KeyspaceExists)) => {
                    return self.open_session(name).0;
                }
                Err(e) => {
                    self.crash(&e);
                    self.rearm();
                }
            }
        }
    }

    /// Post-crash audit of an in-flight (never fully synced) keyspace:
    /// compact whatever survived, assert the recovery contract, then
    /// delete it so the next attempt starts clean. Runs fault-free.
    fn verify_and_abandon(
        &mut self,
        name: &str,
        synced: &BTreeMap<Vec<u8>, Vec<u8>>,
        strict_scan: bool,
    ) {
        let (ks, state) = self.client.open_keyspace(name).unwrap();
        if state == KeyspaceState::Empty {
            assert!(
                synced.is_empty(),
                "{name}: synced data lost — keyspace came back EMPTY"
            );
            ks.delete().unwrap();
            return;
        }
        if state != KeyspaceState::Compacted {
            let job = ks.compact().unwrap();
            self.dev.run_pending_jobs();
            assert_eq!(
                job.poll().unwrap(),
                JobState::Done,
                "{name}: fault-free compact failed"
            );
        }
        for (k, v) in synced {
            assert_eq!(
                &ks.get(k)
                    .unwrap_or_else(|e| panic!("{name}: synced pair {k:?} lost: {e}")),
                v,
                "{name}: synced pair {k:?} corrupted"
            );
        }
        let scan = ks.range(Bound::Unbounded, Bound::Unbounded, None).unwrap();
        let mut keys = BTreeSet::new();
        for (k, v) in &scan {
            assert_eq!(v, &value_for(k), "{name}: half-visible (torn) pair {k:?}");
            if strict_scan {
                assert!(keys.insert(k.clone()), "{name}: duplicate key {k:?}");
            } else {
                keys.insert(k.clone());
            }
        }
        for k in synced.keys() {
            assert!(
                keys.contains(k),
                "{name}: synced key {k:?} missing from scan"
            );
        }
        ks.delete().unwrap();
    }

    /// Drive the keyspace to COMPACTED under fire, surviving cuts that
    /// land during the seal, the sort, or the final persist.
    fn ensure_compacted(&mut self, name: &str) {
        for _ in 0..1000 {
            let (ks, state) = self.open_session(name);
            match state {
                KeyspaceState::Compacted => return,
                KeyspaceState::Compacting => {
                    self.dev.run_pending_jobs();
                    if self.inj.is_powered_off() {
                        self.recover();
                        self.rearm();
                    }
                }
                _ => match ks.compact() {
                    Ok(job) => {
                        self.dev.run_pending_jobs();
                        match job.poll() {
                            Ok(JobState::Done) => {}
                            Ok(JobState::Failed(_)) => {
                                if self.inj.is_powered_off() {
                                    self.recover();
                                    self.rearm();
                                } else {
                                    // Transient noise exhausted the device's
                                    // job retries; the designed outcome is a
                                    // DEGRADED keyspace that a fresh COMPACT
                                    // can re-enter — anything else is a bug.
                                    let (_, state) = self.open_session(name);
                                    assert_eq!(
                                        state,
                                        KeyspaceState::Degraded,
                                        "{name}: job failed without a power cut or DEGRADED state"
                                    );
                                }
                            }
                            Ok(_) => {}
                            Err(e) => {
                                self.crash(&e);
                                self.rearm();
                            }
                        }
                    }
                    // A cut between the seal and its persist can leave the
                    // keyspace COMPACTING in memory: just run the job.
                    Err(ClientError::Device(KvStatus::BadKeyspaceState { .. })) => {
                        self.dev.run_pending_jobs();
                    }
                    Err(e) => {
                        self.crash(&e);
                        self.rearm();
                    }
                },
            }
        }
        panic!("{name}: never reached COMPACTED");
    }

    /// Build the secondary index under fire.
    fn ensure_sidx(&mut self, name: &str) {
        for _ in 0..1000 {
            let (ks, _) = self.open_session(name);
            let done = match ks.stat() {
                Ok(st) => st.secondary_indexes.iter().any(|n| n == "tail"),
                Err(e) => {
                    self.crash(&e);
                    self.rearm();
                    continue;
                }
            };
            if done {
                return;
            }
            match ks.build_secondary_index(sidx_spec()) {
                Ok(job) => {
                    self.dev.run_pending_jobs();
                    match job.poll() {
                        Ok(JobState::Done) => {}
                        Ok(JobState::Failed(_)) => {
                            assert!(
                                self.inj.is_powered_off(),
                                "{name}: sidx build failed without a power cut"
                            );
                            self.recover();
                            self.rearm();
                        }
                        Ok(_) => {}
                        Err(e) => {
                            self.crash(&e);
                            self.rearm();
                        }
                    }
                }
                Err(e) => {
                    self.crash(&e);
                    self.rearm();
                }
            }
        }
        panic!("{name}: secondary index never built");
    }

    fn open_compacted(&mut self, name: &str) -> Keyspace {
        loop {
            let (ks, state) = self.open_session(name);
            if state == KeyspaceState::Compacted {
                return ks;
            }
            self.dev.run_pending_jobs();
            if self.inj.is_powered_off() {
                self.recover();
                self.rearm();
            }
        }
    }

    /// One round: ingest with periodic fsync, compact, index. A crash
    /// during ingest audits + abandons the keyspace and restarts the
    /// round under a fresh name (re-putting is the only way to know the
    /// content exactly, since unsynced pairs may legitimately be lost).
    fn run_round(&mut self, round: usize, strict_scan: bool) {
        let mut attempt = 0u32;
        'retry: loop {
            attempt += 1;
            assert!(attempt < 300, "round {round} livelocked");
            let name = format!("r{round}a{attempt:03}");
            let ks = self.create(&name);
            let mut all = BTreeMap::new();
            let mut synced = BTreeMap::new();
            let mut unsynced: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for i in 0..PAIRS {
                let k = key_for(round, attempt, i);
                let v = value_for(&k);
                match ks.put(&k, &v) {
                    Ok(()) => {
                        unsynced.push((k.clone(), v.clone()));
                        all.insert(k, v);
                    }
                    Err(e) => {
                        self.crash(&e);
                        self.verify_and_abandon(&name, &synced, strict_scan);
                        self.rearm();
                        continue 'retry;
                    }
                }
                if (i + 1) % SYNC_EVERY == 0 || i + 1 == PAIRS {
                    match ks.fsync() {
                        Ok(()) => synced.extend(unsynced.drain(..)),
                        Err(e) => {
                            self.crash(&e);
                            self.verify_and_abandon(&name, &synced, strict_scan);
                            self.rearm();
                            continue 'retry;
                        }
                    }
                }
            }
            self.ensure_compacted(&name);
            self.ensure_sidx(&name);
            self.completed.push((name, all));
            return;
        }
    }

    /// Full-content check of every completed keyspace, still under fire:
    /// point gets, a full scan, and a sidx range, each crash-safe.
    fn final_verify(&mut self, strict_scan: bool) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (name, data) in self.completed.clone() {
            let mut ks = self.open_compacted(&name);
            let entries: Vec<_> = data.iter().collect();
            let mut i = 0;
            while i < entries.len() {
                match ks.get(entries[i].0) {
                    Ok(got) => {
                        assert_eq!(&got, entries[i].1, "{name}: {:?} corrupted", entries[i].0);
                        i += 1;
                    }
                    Err(e) => {
                        self.crash(&e);
                        self.rearm();
                        ks = self.open_compacted(&name);
                    }
                }
            }
            let scan = loop {
                match ks.range(Bound::Unbounded, Bound::Unbounded, None) {
                    Ok(s) => break s,
                    Err(e) => {
                        self.crash(&e);
                        self.rearm();
                        ks = self.open_compacted(&name);
                    }
                }
            };
            if strict_scan {
                let want: Vec<_> = data.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
                assert_eq!(scan, want, "{name}: scan diverged from ingested content");
            } else {
                for (k, v) in &scan {
                    assert_eq!(v, &value_for(k), "{name}: half-visible pair {k:?}");
                }
            }
            let hits = loop {
                match ks.sidx_range("tail", Bound::Unbounded, Bound::Unbounded, None) {
                    Ok(h) => break h,
                    Err(e) => {
                        self.crash(&e);
                        self.rearm();
                        ks = self.open_compacted(&name);
                    }
                }
            };
            if strict_scan {
                assert_eq!(hits.len(), data.len(), "{name}: sidx lost records");
            }
            for (k, v) in &hits {
                assert_eq!(v, &value_for(k), "{name}: sidx returned torn pair {k:?}");
            }
            for (k, v) in &scan {
                fold(k);
                fold(v);
            }
        }
        digest
    }
}

fn run_torture(plan: FaultPlan, strict_scan: bool) -> Report {
    let mut t = Torture::new(plan);
    for round in 0..ROUNDS {
        t.run_round(round, strict_scan);
    }
    let digest = t.final_verify(strict_scan);
    Report {
        crashes: t.crashes,
        final_ops: t.inj.ops(),
        events: t.inj.events(),
        wal_replayed: t.ledger.custom("dev_wal_replayed_records"),
        digest,
    }
}

/// The tentpole sweep: power-cut every k-th flash op for a dozen k
/// values, so cuts land in every phase of the pipeline.
#[test]
fn power_cut_every_kth_op_sweep() {
    let ks = [25u64, 40, 60, 85, 120, 160, 220, 300, 400, 550, 700, 900];
    let mut crashed_runs = 0;
    let mut wal_replays = 0u64;
    for &k in &ks {
        let r = run_torture(FaultPlan::power_cut_every(k, 1000 + k), true);
        // The first cut is scheduled at absolute op k: if the run counted
        // past it with the injector armed, the cut must have fired.
        if r.final_ops >= k {
            assert!(
                r.crashes >= 1,
                "k={k}: op counter passed the cut without firing"
            );
        }
        assert_eq!(
            r.crashes.min(MAX_CUTS),
            r.events.len() as u64,
            "k={k}: every crash must be an audited injector event"
        );
        crashed_runs += (r.crashes > 0) as u32;
        wal_replays += r.wal_replayed;
    }
    // Small k values crash many times; the sweep as a whole must have
    // actually tortured the stack and exercised WAL replay.
    assert!(
        crashed_runs >= 8,
        "only {crashed_runs} of {} runs crashed",
        ks.len()
    );
    assert!(
        wal_replays > 0,
        "no run ever replayed WAL records after a cut"
    );
}

/// Scheduled single cuts at the N-th flash op: fires at most once, and
/// exactly once whenever the workload reaches op N.
#[test]
fn power_cut_at_nth_op() {
    for n in [10u64, 35, 75, 140, 260, 500] {
        let r = run_torture(FaultPlan::power_cut_at(n, 7), true);
        assert!(
            r.crashes <= 1,
            "n={n}: single-cut plan crashed {} times",
            r.crashes
        );
        if r.final_ops >= n {
            assert_eq!(r.crashes, 1, "n={n}: cut never fired");
        }
    }
}

/// Determinism: the same seed over the same workload reproduces the
/// identical failure schedule, crash count, and final content.
#[test]
fn same_seed_reproduces_identical_failure_schedule() {
    let a = run_torture(FaultPlan::power_cut_every(70, 42), true);
    let b = run_torture(FaultPlan::power_cut_every(70, 42), true);
    assert_eq!(a.events, b.events, "failure schedules diverged");
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.final_ops, b.final_ops);
    assert_eq!(a.digest, b.digest, "recovered content diverged");
    assert!(
        a.crashes >= 2,
        "expected several cuts at k=70, got {}",
        a.crashes
    );
}

/// Power cuts layered with transient read/program noise: the client's
/// retry policy absorbs the noise, and the recovery contract still holds.
/// (Scan equality is relaxed: a retried put whose WAL record landed twice
/// legitimately yields duplicate identical pairs.)
#[test]
fn power_cuts_with_transient_noise() {
    // 0.002/op keeps multi-hundred-op compaction jobs viable: at 0.02 a
    // job run fails with near-certainty and the device degrades every
    // keyspace instead of ever finishing.
    let plan = FaultPlan::power_cut_every(120, 9).with_error_prob(0.002);
    let r = run_torture(plan, false);
    assert!(r.crashes >= 1, "no cut fired");
    assert!(
        r.events
            .iter()
            .any(|e| e.kind == kvcsd::sim::fault::FaultKind::Transient),
        "noise plan injected no transient errors"
    );
}
