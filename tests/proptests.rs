//! Property-based tests over the core data structures and invariants.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use kvcsd::blockfs::{BlockFs, FsConfig};
use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd::lsm::{CompactionMode, Db, Options};
use kvcsd::proto::{Bound, BulkBuilder, DeviceHandler, SidxKey};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::IoLedger;
use kvcsd_client::KvCsd;

fn geom(blocks_per_channel: u32) -> FlashGeometry {
    FlashGeometry { channels: 8, blocks_per_channel, pages_per_block: 16, page_bytes: 4096 }
}

fn make_device() -> (Arc<KvCsdDevice>, KvCsd) {
    let cfg = SimConfig::default();
    let g = geom(512);
    let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
    let nand = Arc::new(NandArray::new(g, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig { zone_blocks: 1, max_open_zones: 1 << 16 }));
    let dev = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig { cluster_width: 8, soc_dram_bytes: 8 << 20, seed: 5, ..DeviceConfig::default() },
    ));
    let client = KvCsd::connect(Arc::clone(&dev) as Arc<dyn DeviceHandler>, ledger);
    (dev, client)
}

fn make_db(memtable_bytes: usize) -> Arc<Db> {
    let cfg = SimConfig::default();
    let g = geom(1024);
    let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
    let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
    let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
    let fs = Arc::new(BlockFs::format(conv, cfg.cost.clone(), FsConfig::default()));
    Arc::new(
        Db::open(
            fs,
            "",
            Options {
                memtable_bytes,
                compaction: CompactionMode::Automatic,
                level_base_bytes: (memtable_bytes as u64) * 4,
                target_file_bytes: memtable_bytes,
                ..Options::default()
            },
        )
        .unwrap(),
    )
}

/// An op in the LSM model test.
#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key universe guarantees overwrites and delete hits.
    let key = (0u8..40).prop_map(|i| format!("key-{i:03}").into_bytes());
    prop_oneof![
        3 => (key.clone(), vec(any::<u8>(), 0..80)).prop_map(|(k, v)| Op::Put(k, v)),
        1 => key.prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The software LSM behaves exactly like an ordered map under
    /// arbitrary put/delete sequences, across flushes and compactions.
    #[test]
    fn lsm_equals_btreemap(ops in vec(op_strategy(), 1..300)) {
        let db = make_db(2 << 10); // tiny memtable: force flush/compaction
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
            }
        }
        // Point queries.
        for i in 0..40u8 {
            let k = format!("key-{i:03}").into_bytes();
            prop_assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned());
        }
        // Ordered scan.
        let got = db.scan(&[], &[], None).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(got, want);
    }

    /// KV-CSD's compacted keyspace equals the sorted map of its inserts
    /// (unique keys), for arbitrary data.
    #[test]
    fn kvcsd_equals_sorted_input(
        entries in proptest::collection::btree_map(
            vec(1u8..=255, 1..24),
            vec(any::<u8>(), 0..100),
            1..200,
        )
    ) {
        let (dev, client) = make_device();
        let ks = client.create_keyspace("prop").unwrap();
        let mut bulk = ks.bulk_writer();
        // Insert in reverse so the device really sorts.
        for (k, v) in entries.iter().rev() {
            bulk.put(k, v).unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap();
        dev.run_pending_jobs();

        let scan = ks.range(Bound::Unbounded, Bound::Unbounded, None).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            entries.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(scan, want);
        for (k, v) in entries.iter().take(20) {
            prop_assert_eq!(&ks.get(k).unwrap(), v);
        }
    }

    /// Bulk payloads round-trip arbitrary pair sets exactly.
    #[test]
    fn bulk_payload_roundtrip(
        pairs in vec((vec(any::<u8>(), 0..64), vec(any::<u8>(), 0..200)), 0..100)
    ) {
        let mut b = BulkBuilder::new(1 << 20);
        for (k, v) in &pairs {
            prop_assert!(b.push(k, v));
        }
        let payload = b.finish();
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            payload.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        prop_assert_eq!(got, pairs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Order-preserving encodings: the defining property, for every type.
    #[test]
    fn sidx_encoding_preserves_order_i64(a in any::<i64>(), b in any::<i64>()) {
        let (ea, eb) = (SidxKey::I64(a).encode(), SidxKey::I64(b).encode());
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn sidx_encoding_preserves_order_u64(a in any::<u64>(), b in any::<u64>()) {
        let (ea, eb) = (SidxKey::U64(a).encode(), SidxKey::U64(b).encode());
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn sidx_encoding_preserves_order_f64(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let (ea, eb) = (SidxKey::F64(a).encode(), SidxKey::F64(b).encode());
        if a < b {
            prop_assert!(ea < eb);
        } else if a > b {
            prop_assert!(ea > eb);
        } else {
            // -0.0 == 0.0 but encodes differently; both orderings of the
            // two encodings are admissible for equal values.
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ZNS invariants under arbitrary append/reset sequences: the write
    /// pointer is exactly the sum of appended pages and reads below it
    /// return exactly what was appended.
    #[test]
    fn zns_append_reset_invariants(
        ops in vec((0u32..8, 1usize..6000, any::<bool>()), 1..60)
    ) {
        let cfg = SimConfig::default();
        let g = geom(64);
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
        let zns = ZonedNamespace::new(
            nand,
            ZnsConfig { zone_blocks: 2, max_open_zones: 1 << 16 },
        );
        // Shadow state per zone: the byte payloads appended.
        let mut shadow: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 8];
        for (zone, len, reset) in ops {
            if reset {
                zns.reset(zone).unwrap();
                shadow[zone as usize].clear();
                prop_assert_eq!(zns.zone_info(zone).unwrap().write_pointer_pages, 0);
                continue;
            }
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let pages: u32 = len.div_ceil(4096) as u32;
            let wp = zns.zone_info(zone).unwrap().write_pointer_pages;
            if wp + pages > zns.zone_capacity_pages() {
                prop_assert!(zns.append(zone, &data).is_err());
                continue;
            }
            let start = zns.append(zone, &data).unwrap();
            prop_assert_eq!(start, wp);
            shadow[zone as usize].push(data);
            prop_assert_eq!(
                zns.zone_info(zone).unwrap().write_pointer_pages,
                wp + pages
            );
        }
        // Every appended payload reads back.
        for (zone, payloads) in shadow.iter().enumerate() {
            let mut page = 0u32;
            for p in payloads {
                let pages = p.len().div_ceil(4096) as u32;
                let back = zns.read_pages(zone as u32, page, pages).unwrap();
                prop_assert_eq!(&back[..p.len()], &p[..]);
                page += pages;
            }
        }
    }

    /// The FTL never loses live data under arbitrary overwrite/trim
    /// pressure that forces garbage collection.
    #[test]
    fn ftl_preserves_live_pages(
        ops in vec((0u64..60, any::<u8>(), any::<bool>()), 50..400)
    ) {
        let cfg = SimConfig::default();
        let g = FlashGeometry {
            channels: 4, blocks_per_channel: 8, pages_per_block: 4, page_bytes: 512,
        };
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
        let conv = ConventionalNamespace::new(
            nand,
            ConvConfig { op_fraction: 0.6, gc_free_blocks: 3, ..ConvConfig::default() },
        );
        let logical = conv.logical_pages();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for (lpa, fill, trim) in ops {
            let lpa = lpa % logical.min(60);
            if trim {
                conv.trim(lpa).unwrap();
                model.remove(&lpa);
            } else {
                conv.write(lpa, &[fill; 16]).unwrap();
                model.insert(lpa, fill);
            }
        }
        for (lpa, fill) in &model {
            prop_assert_eq!(conv.read(*lpa).unwrap()[0], *fill);
        }
    }
}
