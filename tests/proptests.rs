//! Randomized model tests over the core data structures and invariants.
//!
//! Property-style testing without an external framework: every case draws
//! its inputs from a seeded [`XorShift64`], so failures reproduce exactly
//! (the seed is in the assertion message) and the suite never fetches a
//! crate. Each property runs across several seeds to cover the input
//! space the way `proptest` cases would.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd::blockfs::{BlockFs, FsConfig};
use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd::lsm::{CompactionMode, Db, Options};
use kvcsd::proto::{Bound, BulkBuilder, DeviceHandler, SidxKey};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::{IoLedger, XorShift64};
use kvcsd_client::KvCsd;

fn geom(blocks_per_channel: u32) -> FlashGeometry {
    FlashGeometry {
        channels: 8,
        blocks_per_channel,
        pages_per_block: 16,
        page_bytes: 4096,
    }
}

fn make_device() -> (Arc<KvCsdDevice>, KvCsd) {
    let cfg = SimConfig::default();
    let g = geom(512);
    let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
    let nand = Arc::new(NandArray::new(g, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(
        nand,
        ZnsConfig {
            zone_blocks: 1,
            max_open_zones: 1 << 16,
        },
    ));
    let dev = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig {
            cluster_width: 8,
            soc_dram_bytes: 8 << 20,
            seed: 5,
            ..DeviceConfig::default()
        },
    ));
    let client = KvCsd::connect(Arc::clone(&dev) as Arc<dyn DeviceHandler>, ledger);
    (dev, client)
}

fn make_db(memtable_bytes: usize) -> Arc<Db> {
    let cfg = SimConfig::default();
    let g = geom(1024);
    let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
    let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
    let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
    let fs = Arc::new(BlockFs::format(conv, cfg.cost.clone(), FsConfig::default()));
    Arc::new(
        Db::open(
            fs,
            "",
            Options {
                memtable_bytes,
                compaction: CompactionMode::Automatic,
                level_base_bytes: (memtable_bytes as u64) * 4,
                target_file_bytes: memtable_bytes,
                ..Options::default()
            },
        )
        .unwrap(),
    )
}

fn rand_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_below(256) as u8).collect()
}

/// The software LSM behaves exactly like an ordered map under arbitrary
/// put/delete sequences, across flushes and compactions.
#[test]
fn lsm_equals_btreemap() {
    for seed in 1..=8u64 {
        let mut rng = XorShift64::new(seed);
        let db = make_db(2 << 10); // tiny memtable: force flush/compaction
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let ops = 1 + rng.next_below(300) as usize;
        for _ in 0..ops {
            // A small key universe guarantees overwrites and delete hits.
            let k = format!("key-{:03}", rng.next_below(40)).into_bytes();
            if rng.next_below(4) < 3 {
                let v = rand_bytes(&mut rng, 80);
                db.put(&k, &v).unwrap();
                model.insert(k, v);
            } else {
                db.delete(&k).unwrap();
                model.remove(&k);
            }
        }
        // Point queries.
        for i in 0..40u8 {
            let k = format!("key-{i:03}").into_bytes();
            assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned(), "seed {seed}");
        }
        // Ordered scan.
        let got = db.scan(&[], &[], None).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

/// KV-CSD's compacted keyspace equals the sorted map of its inserts
/// (unique keys), for arbitrary data.
#[test]
fn kvcsd_equals_sorted_input() {
    for seed in 1..=4u64 {
        let mut rng = XorShift64::new(seed * 101);
        let mut entries: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let n = 1 + rng.next_below(200) as usize;
        while entries.len() < n {
            let klen = 1 + rng.next_below(23) as usize;
            let k: Vec<u8> = (0..klen).map(|_| 1 + rng.next_below(255) as u8).collect();
            let v = rand_bytes(&mut rng, 100);
            entries.insert(k, v);
        }
        let (dev, client) = make_device();
        let ks = client.create_keyspace("prop").unwrap();
        let mut bulk = ks.bulk_writer();
        // Insert in reverse so the device really sorts.
        for (k, v) in entries.iter().rev() {
            bulk.put(k, v).unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap();
        dev.run_pending_jobs();

        let scan = ks.range(Bound::Unbounded, Bound::Unbounded, None).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(a, b)| (a.clone(), b.clone()))
            .collect();
        assert_eq!(scan, want, "seed {seed}");
        for (k, v) in entries.iter().take(20) {
            assert_eq!(&ks.get(k).unwrap(), v, "seed {seed}");
        }
    }
}

/// Bulk payloads round-trip arbitrary pair sets exactly.
#[test]
fn bulk_payload_roundtrip() {
    for seed in 1..=8u64 {
        let mut rng = XorShift64::new(seed * 7);
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..rng.next_below(100))
            .map(|_| (rand_bytes(&mut rng, 63), rand_bytes(&mut rng, 199)))
            .collect();
        let mut b = BulkBuilder::new(1 << 20);
        for (k, v) in &pairs {
            assert!(b.push(k, v), "seed {seed}");
        }
        let payload = b.finish();
        let got: Vec<(Vec<u8>, Vec<u8>)> = payload
            .iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(got, pairs, "seed {seed}");
    }
}

/// Order-preserving encodings: the defining property, for every type.
#[test]
fn sidx_encoding_preserves_order_i64() {
    let mut rng = XorShift64::new(13);
    for _ in 0..4096 {
        let (a, b) = (rng.next_u64() as i64, rng.next_u64() as i64);
        let (ea, eb) = (SidxKey::I64(a).encode(), SidxKey::I64(b).encode());
        assert_eq!(a.cmp(&b), ea.cmp(&eb), "a={a} b={b}");
    }
}

#[test]
fn sidx_encoding_preserves_order_u64() {
    let mut rng = XorShift64::new(17);
    for _ in 0..4096 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (ea, eb) = (SidxKey::U64(a).encode(), SidxKey::U64(b).encode());
        assert_eq!(a.cmp(&b), ea.cmp(&eb), "a={a} b={b}");
    }
}

#[test]
fn sidx_encoding_preserves_order_f64() {
    let mut rng = XorShift64::new(19);
    let draw = |rng: &mut XorShift64| {
        // Mix of magnitudes, signs, and exact zeros.
        match rng.next_below(4) {
            0 => (rng.next_f64() - 0.5) * 1e300,
            1 => (rng.next_f64() - 0.5) * 1e-300,
            2 => 0.0,
            _ => (rng.next_f64() - 0.5) * 1e3,
        }
    };
    for _ in 0..4096 {
        let (a, b) = (draw(&mut rng), draw(&mut rng));
        if !(a.is_finite() && b.is_finite()) {
            continue;
        }
        let (ea, eb) = (SidxKey::F64(a).encode(), SidxKey::F64(b).encode());
        if a < b {
            assert!(ea < eb, "a={a} b={b}");
        } else if a > b {
            assert!(ea > eb, "a={a} b={b}");
        }
        // -0.0 == 0.0 but encodes differently; both orderings of the two
        // encodings are admissible for equal values.
    }
}

/// ZNS invariants under arbitrary append/reset sequences: the write
/// pointer is exactly the sum of appended pages and reads below it return
/// exactly what was appended.
#[test]
fn zns_append_reset_invariants() {
    for seed in 1..=6u64 {
        let mut rng = XorShift64::new(seed * 31);
        let cfg = SimConfig::default();
        let g = geom(64);
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
        let zns = ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 2,
                max_open_zones: 1 << 16,
            },
        );
        // Shadow state per zone: the byte payloads appended.
        let mut shadow: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 8];
        let ops = 1 + rng.next_below(60);
        for _ in 0..ops {
            let zone = rng.next_below(8) as u32;
            if rng.next_below(2) == 1 {
                zns.reset(zone).unwrap();
                shadow[zone as usize].clear();
                assert_eq!(
                    zns.zone_info(zone).unwrap().write_pointer_pages,
                    0,
                    "seed {seed}"
                );
                continue;
            }
            let len = 1 + rng.next_below(5999) as usize;
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let pages: u32 = len.div_ceil(4096) as u32;
            let wp = zns.zone_info(zone).unwrap().write_pointer_pages;
            if wp + pages > zns.zone_capacity_pages() {
                assert!(zns.append(zone, &data).is_err(), "seed {seed}");
                continue;
            }
            let start = zns.append(zone, &data).unwrap();
            assert_eq!(start, wp, "seed {seed}");
            shadow[zone as usize].push(data);
            assert_eq!(
                zns.zone_info(zone).unwrap().write_pointer_pages,
                wp + pages,
                "seed {seed}"
            );
        }
        // Every appended payload reads back.
        for (zone, payloads) in shadow.iter().enumerate() {
            let mut page = 0u32;
            for p in payloads {
                let pages = p.len().div_ceil(4096) as u32;
                let back = zns.read_pages(zone as u32, page, pages).unwrap();
                assert_eq!(&back[..p.len()], &p[..], "seed {seed}");
                page += pages;
            }
        }
    }
}

/// The FTL never loses live data under arbitrary overwrite/trim pressure
/// that forces garbage collection.
#[test]
fn ftl_preserves_live_pages() {
    for seed in 1..=6u64 {
        let mut rng = XorShift64::new(seed * 43);
        let cfg = SimConfig::default();
        let g = FlashGeometry {
            channels: 4,
            blocks_per_channel: 8,
            pages_per_block: 4,
            page_bytes: 512,
        };
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
        let conv = ConventionalNamespace::new(
            nand,
            ConvConfig {
                op_fraction: 0.6,
                gc_free_blocks: 3,
                ..ConvConfig::default()
            },
        );
        let logical = conv.logical_pages();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        let ops = 50 + rng.next_below(350);
        for _ in 0..ops {
            let lpa = rng.next_below(60) % logical.min(60);
            if rng.next_below(2) == 1 {
                conv.trim(lpa).unwrap();
                model.remove(&lpa);
            } else {
                let fill = rng.next_below(256) as u8;
                conv.write(lpa, &[fill; 16]).unwrap();
                model.insert(lpa, fill);
            }
        }
        for (lpa, fill) in &model {
            assert_eq!(conv.read(*lpa).unwrap()[0], *fill, "seed {seed}");
        }
    }
}

/// LSM WAL replay over a randomly truncated and bit-flipped log tail
/// recovers exactly the records whose frames precede the damage — and
/// never panics or errors, whatever the corruption looks like.
#[test]
fn lsm_wal_tail_damage_recovers_valid_prefix() {
    use kvcsd::lsm::wal::{Wal, WalRecord};
    for seed in 1..=40u64 {
        let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9));
        let cfg = SimConfig::default();
        let g = geom(256);
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(g, &cfg.hw, ledger));
        let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
        let fs = BlockFs::format(conv, cfg.cost.clone(), FsConfig::default());

        // Build a log of n records, tracking each frame's end offset.
        let wal = Wal::create(&fs, "wal").unwrap();
        let file = fs.open("wal").unwrap();
        let n = 2 + rng.next_below(20) as usize;
        let mut recs = Vec::new();
        let mut ends = Vec::new();
        for i in 0..n {
            let rec = if rng.next_below(4) == 0 {
                WalRecord::Delete {
                    seq: i as u64,
                    key: rand_bytes(&mut rng, 24),
                }
            } else {
                WalRecord::Put {
                    seq: i as u64,
                    key: rand_bytes(&mut rng, 24),
                    value: rand_bytes(&mut rng, 200),
                }
            };
            wal.append(&fs, &rec, false).unwrap();
            recs.push(rec);
            ends.push(fs.len(file).unwrap());
        }
        let total = *ends.last().unwrap();
        let bytes = fs.read_exact_at(file, 0, total as usize).unwrap();

        // Damage the tail: truncate at a random byte, then (half the
        // time) flip one random bit somewhere in the kept region.
        let cut = rng.next_below(total + 1);
        let mut kept = bytes[..cut as usize].to_vec();
        let flip = if !kept.is_empty() && rng.next_below(2) == 0 {
            let at = rng.next_below(kept.len() as u64);
            kept[at as usize] ^= 1 << rng.next_below(8);
            Some(at)
        } else {
            None
        };
        // Every frame wholly before the first damaged byte must come
        // back; nothing at or past it may.
        let cpoint = flip.unwrap_or(cut).min(cut);
        let expect = ends.iter().filter(|&&e| e <= cpoint).count();

        fs.unlink("wal").unwrap();
        let id = fs.create("wal").unwrap();
        fs.append(id, &kept).unwrap();
        let got = Wal::replay(&fs, "wal").unwrap();
        assert_eq!(got.len(), expect, "seed {seed}: cut {cut}, flip {flip:?}");
        assert_eq!(
            &got[..],
            &recs[..expect],
            "seed {seed}: cut {cut}, flip {flip:?}"
        );
    }
}

/// Device WAL replay over a randomly truncated and bit-flipped cluster
/// recovers exactly the valid-CRC prefix, across sync padding gaps.
#[test]
fn device_wal_tail_damage_recovers_valid_prefix() {
    use kvcsd::device::soc::SocCharger;
    use kvcsd::device::wal::DeviceWal;
    use kvcsd::device::ZoneManager;
    use kvcsd::sim::config::CostModel;
    use kvcsd::sim::HardwareSpec;

    const BLOCK: u64 = 4096;
    const HEADER: u64 = 11; // tag + klen:u16 + vlen:u32 + crc:u32
    for seed in 1..=40u64 {
        let mut rng = XorShift64::new(seed.wrapping_mul(0x517C_C1B7));
        let g = geom(256);
        let ledger = Arc::new(IoLedger::new(g.channels, g.page_bytes));
        let nand = Arc::new(NandArray::new(
            g,
            &HardwareSpec::default(),
            Arc::clone(&ledger),
        ));
        let zns = Arc::new(ZonedNamespace::new(
            nand,
            ZnsConfig {
                zone_blocks: 1,
                max_open_zones: 1 << 16,
            },
        ));
        let mgr = ZoneManager::new(zns, 1, seed);
        let soc = SocCharger::new(ledger, CostModel::default());

        // Build a WAL, shadowing the byte layout (frames + sync padding).
        let c1 = mgr.alloc_cluster(4).unwrap();
        let mut wal = DeviceWal::new(c1);
        let mut pos = 0u64;
        let n = 2 + rng.next_below(30) as usize;
        let mut recs = Vec::new();
        let mut spans = Vec::new(); // (start, end) of each frame
        for _ in 0..n {
            let key = rand_bytes(&mut rng, 20);
            let value = rand_bytes(&mut rng, 300);
            wal.append(&mgr, &soc, &key, &value).unwrap();
            spans.push((pos, pos + HEADER + key.len() as u64 + value.len() as u64));
            pos += HEADER + key.len() as u64 + value.len() as u64;
            recs.push((key, value));
            if rng.next_below(5) == 0 {
                wal.sync(&mgr).unwrap();
                pos = pos.next_multiple_of(BLOCK);
            }
        }
        wal.sync(&mgr).unwrap();
        pos = pos.next_multiple_of(BLOCK);
        let blocks = pos / BLOCK;
        let mut stream = Vec::with_capacity(pos as usize);
        for b in 0..blocks {
            stream.extend_from_slice(&mgr.read_block(c1, b).unwrap());
        }

        // Damage: drop whole tail blocks (replay is block-granular), then
        // (half the time) flip one bit inside a surviving frame.
        let keep_blocks = rng.next_below(blocks + 1);
        let kept_bytes = keep_blocks * BLOCK;
        let mut kept = stream[..kept_bytes as usize].to_vec();
        let candidates: Vec<usize> = (0..spans.len())
            .filter(|&i| spans[i].0 < kept_bytes)
            .collect();
        let flip = if !candidates.is_empty() && rng.next_below(2) == 0 {
            let frame = candidates[rng.next_below(candidates.len() as u64) as usize];
            let (start, end) = spans[frame];
            let at = start + rng.next_below(end.min(kept_bytes) - start);
            kept[at as usize] ^= 1 << rng.next_below(8);
            Some(spans[frame].0)
        } else {
            None
        };
        let cpoint = flip.unwrap_or(kept_bytes).min(kept_bytes);
        let expect = spans.iter().filter(|&&(_, e)| e <= cpoint).count();

        // Materialize the damaged image on a fresh cluster and replay.
        let c2 = mgr.alloc_cluster(4).unwrap();
        for chunk in kept.chunks(BLOCK as usize) {
            mgr.append_block(c2, chunk).unwrap();
        }
        let mut got = Vec::new();
        let count = DeviceWal::replay(&mgr, c2, keep_blocks, |k, v| {
            got.push((k, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            count as usize, expect,
            "seed {seed}: keep {keep_blocks}, flip {flip:?}"
        );
        assert_eq!(
            &got[..],
            &recs[..expect],
            "seed {seed}: keep {keep_blocks}, flip {flip:?}"
        );
    }
}
