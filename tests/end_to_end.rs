//! Cross-crate integration tests: the full client -> protocol -> device ->
//! zone manager -> ZNS -> NAND stack, and cross-system result equivalence
//! between KV-CSD and the software LSM baseline.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvcsd::blockfs::{BlockFs, FsConfig};
use kvcsd::device::{DeviceConfig, KvCsdDevice};
use kvcsd::flash::{
    ConvConfig, ConventionalNamespace, FlashGeometry, NandArray, ZnsConfig, ZonedNamespace,
};
use kvcsd::lsm::{CompactionMode, Db, Options};
use kvcsd::proto::{Bound, DeviceHandler, SecondaryIndexSpec, SecondaryKeyType, SidxKey};
use kvcsd::sim::config::SimConfig;
use kvcsd::sim::{IoLedger, XorShift64};
use kvcsd_client::KvCsd;

fn make_device() -> (Arc<KvCsdDevice>, KvCsd, Arc<IoLedger>) {
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 1024,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, Arc::clone(&ledger)));
    let zns = Arc::new(ZonedNamespace::new(nand, ZnsConfig::default()));
    let dev = Arc::new(KvCsdDevice::new(
        zns,
        cfg.cost.clone(),
        DeviceConfig::default(),
    ));
    let client = KvCsd::connect(
        Arc::clone(&dev) as Arc<dyn DeviceHandler>,
        Arc::clone(&ledger),
    );
    (dev, client, ledger)
}

fn make_baseline() -> (Arc<Db>, Arc<BlockFs>) {
    let cfg = SimConfig::default();
    let geom = FlashGeometry {
        channels: cfg.hw.flash_channels,
        blocks_per_channel: 1024,
        pages_per_block: 16,
        page_bytes: cfg.hw.page_bytes,
    };
    let ledger = Arc::new(IoLedger::new(geom.channels, geom.page_bytes));
    let nand = Arc::new(NandArray::new(geom, &cfg.hw, ledger));
    let conv = Arc::new(ConventionalNamespace::new(nand, ConvConfig::default()));
    let fs = Arc::new(BlockFs::format(conv, cfg.cost.clone(), FsConfig::default()));
    let db = Arc::new(
        Db::open(
            Arc::clone(&fs),
            "",
            Options {
                memtable_bytes: 64 << 10,
                compaction: CompactionMode::Automatic,
                ..Options::default()
            },
        )
        .unwrap(),
    );
    (db, fs)
}

/// Random dataset: unique random-looking keys, values carrying a trailing
/// u32 "score" so a secondary index can be built.
fn dataset(n: u64, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|i| {
            let key = format!("k{:016x}", rng.next_u64()).into_bytes();
            let mut value = vec![0u8; 32];
            value[..8].copy_from_slice(&i.to_le_bytes());
            value[28..].copy_from_slice(&((i % 1000) as u32).to_le_bytes());
            (key, value)
        })
        .collect()
}

#[test]
fn kvcsd_matches_inmemory_model() {
    let (dev, client, _) = make_device();
    let data = dataset(5_000, 1);
    let model: BTreeMap<Vec<u8>, Vec<u8>> = data.iter().cloned().collect();

    let ks = client.create_keyspace("model-check").unwrap();
    let mut bulk = ks.bulk_writer();
    for (k, v) in &data {
        bulk.put(k, v).unwrap();
    }
    bulk.finish().unwrap();
    ks.compact().unwrap();
    dev.run_pending_jobs();

    // Point queries match the model.
    for (k, v) in model.iter().step_by(37) {
        assert_eq!(&ks.get(k).unwrap(), v);
    }
    // Full scan matches the model in order and content.
    let scan = ks.range(Bound::Unbounded, Bound::Unbounded, None).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
    assert_eq!(scan, want);
    // Bounded ranges match the model's ranges.
    let keys: Vec<&Vec<u8>> = model.keys().collect();
    let (lo, hi) = (keys[100].clone(), keys[200].clone());
    let got = ks
        .range(
            Bound::Included(lo.clone()),
            Bound::Excluded(hi.clone()),
            None,
        )
        .unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = model
        .range(lo..hi)
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn kvcsd_and_baseline_agree_on_everything() {
    let (dev, client, _) = make_device();
    let (db, _fs) = make_baseline();
    let data = dataset(4_000, 2);

    let ks = client.create_keyspace("agree").unwrap();
    let mut bulk = ks.bulk_writer();
    for (k, v) in &data {
        bulk.put(k, v).unwrap();
        db.put(k, v).unwrap();
    }
    bulk.finish().unwrap();
    ks.compact().unwrap();
    dev.run_pending_jobs();
    db.flush().unwrap();

    for (k, _) in data.iter().step_by(41) {
        assert_eq!(Some(ks.get(k).unwrap()), db.get(k).unwrap());
    }
    let scan_k = ks.range(Bound::Unbounded, Bound::Unbounded, None).unwrap();
    let scan_b = db.scan(&[], &[], None).unwrap();
    assert_eq!(scan_k, scan_b);
}

#[test]
fn secondary_index_agrees_with_brute_force() {
    let (dev, client, _) = make_device();
    let data = dataset(3_000, 3);
    let ks = client.create_keyspace("sidx").unwrap();
    let mut bulk = ks.bulk_writer();
    for (k, v) in &data {
        bulk.put(k, v).unwrap();
    }
    bulk.finish().unwrap();
    ks.compact().unwrap();
    dev.run_pending_jobs();
    ks.build_secondary_index(SecondaryIndexSpec {
        name: "score".into(),
        value_offset: 28,
        value_len: 4,
        key_type: SecondaryKeyType::U32,
    })
    .unwrap();
    dev.run_pending_jobs();

    // Brute-force expectation: score in [900, 1000).
    let mut want: Vec<Vec<u8>> = data
        .iter()
        .filter(|(_, v)| u32::from_le_bytes(v[28..32].try_into().unwrap()) >= 900)
        .map(|(k, _)| k.clone())
        .collect();
    want.sort();
    let got = ks
        .sidx_range(
            "score",
            Bound::Included(SidxKey::U32(900).encode()),
            Bound::Unbounded,
            None,
        )
        .unwrap();
    let mut got_keys: Vec<Vec<u8>> = got.iter().map(|(k, _)| k.clone()).collect();
    got_keys.sort();
    assert_eq!(got_keys, want);
    // Values returned are the full original records.
    for (k, v) in &got {
        let orig = data.iter().find(|(dk, _)| dk == k).unwrap();
        assert_eq!(v, &orig.1);
    }
}

#[test]
fn device_survives_many_keyspace_lifecycles() {
    let (dev, client, _) = make_device();
    let zones0 = dev.zone_manager().free_zones();
    for round in 0..10 {
        let ks = client.create_keyspace(&format!("cycle-{round}")).unwrap();
        let mut bulk = ks.bulk_writer();
        for i in 0..500u32 {
            bulk.put(format!("k{i:05}").as_bytes(), &[round as u8; 32])
                .unwrap();
        }
        bulk.finish().unwrap();
        ks.compact().unwrap();
        dev.run_pending_jobs();
        assert_eq!(ks.get(b"k00123").unwrap(), vec![round as u8; 32]);
        ks.delete().unwrap();
    }
    assert_eq!(
        dev.zone_manager().free_zones(),
        zones0,
        "every cycle must return all its zones"
    );
    assert_eq!(dev.dram().used(), 0);
}

#[test]
fn offloading_keeps_host_idle_during_background_work() {
    let (dev, client, ledger) = make_device();
    let ks = client.create_keyspace("offload").unwrap();
    let mut bulk = ks.bulk_writer();
    for (k, v) in dataset(5_000, 4) {
        bulk.put(&k, &v).unwrap();
    }
    bulk.finish().unwrap();
    ks.compact().unwrap();

    let before = ledger.snapshot();
    dev.run_pending_jobs(); // the offloaded compaction
    let work = ledger.snapshot().since(&before);
    assert_eq!(work.host_cpu_ns, 0, "compaction must consume zero host CPU");
    assert_eq!(work.pcie_bytes(), 0, "compaction must move zero bus bytes");
    assert!(work.soc_cpu_ns > 0);
    assert!(work.nand_read_pages > 0 && work.nand_program_pages > 0);
}

#[test]
fn bulk_and_single_puts_are_equivalent() {
    let (dev, client, _) = make_device();
    let data = dataset(1_000, 5);

    let ks_bulk = client.create_keyspace("bulk").unwrap();
    let mut bulk = ks_bulk.bulk_writer();
    for (k, v) in &data {
        bulk.put(k, v).unwrap();
    }
    bulk.finish().unwrap();
    ks_bulk.compact().unwrap();

    let ks_single = client.create_keyspace("single").unwrap();
    for (k, v) in &data {
        ks_single.put(k, v).unwrap();
    }
    ks_single.compact().unwrap();
    dev.run_pending_jobs();

    let a = ks_bulk
        .range(Bound::Unbounded, Bound::Unbounded, None)
        .unwrap();
    let b = ks_single
        .range(Bound::Unbounded, Bound::Unbounded, None)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn single_pass_compact_with_indexes_through_client() {
    let (dev, client, _) = make_device();
    let data = dataset(2_000, 9);
    let ks = client.create_keyspace("onepass").unwrap();
    let mut bulk = ks.bulk_writer();
    for (k, v) in &data {
        bulk.put(k, v).unwrap();
    }
    bulk.finish().unwrap();
    let job = ks
        .compact_with_indexes(vec![SecondaryIndexSpec {
            name: "score".into(),
            value_offset: 28,
            value_len: 4,
            key_type: SecondaryKeyType::U32,
        }])
        .unwrap();
    dev.run_pending_jobs();
    assert!(job.is_terminal().unwrap());
    // Primary and secondary immediately queryable.
    assert_eq!(ks.get(&data[7].0).unwrap(), data[7].1);
    let hits = ks
        .sidx_range(
            "score",
            Bound::Included(SidxKey::U32(999).encode()),
            Bound::Unbounded,
            None,
        )
        .unwrap();
    let want = data
        .iter()
        .filter(|(_, v)| u32::from_le_bytes(v[28..32].try_into().unwrap()) >= 999)
        .count();
    assert_eq!(hits.len(), want);
    assert!(!hits.is_empty());
}

#[test]
fn fsync_is_accepted_through_client() {
    let (dev, client, _) = make_device();
    let ks = client.create_keyspace("sync").unwrap();
    ks.put(b"k", b"v").unwrap();
    ks.fsync().unwrap(); // WAL disabled by default: durable no-op
    ks.compact().unwrap();
    dev.run_pending_jobs();
    assert_eq!(ks.get(b"k").unwrap(), b"v");
}

#[test]
fn baseline_recovers_after_reopen_while_device_state_is_fresh() {
    // The baseline persists through its manifest + WAL on the shared fs.
    let (db, fs) = make_baseline();
    for (k, v) in dataset(1_500, 6) {
        db.put(&k, &v).unwrap();
    }
    let expect = db.scan(&[], &[], None).unwrap();
    drop(db);
    let db2 = Db::open(
        Arc::clone(&fs),
        "",
        Options {
            memtable_bytes: 64 << 10,
            ..Options::default()
        },
    )
    .unwrap();
    assert_eq!(db2.scan(&[], &[], None).unwrap(), expect);
}
